//! Cluster topology: nodes, devices, and network links.
//!
//! The testbed in the paper is four worker nodes, each with four A100
//! GPUs, connected by 100 Gbps InfiniBand; GPUs within a node communicate
//! over NVLink. We model that as a two-level topology:
//!
//! * each device owns a pair of intra-node links (`NvlinkTx`/`NvlinkRx`),
//! * each node owns a pair of inter-node links (`NicTx`/`NicRx`).
//!
//! A flow between devices on the same node traverses the source's
//! `NvlinkTx` and the destination's `NvlinkRx`; a flow between nodes
//! traverses the source device's `NicTx` and the destination device's
//! `NicRx` (A100 clusters of the paper's era give each GPU its own
//! 100 Gbps HCA). Inter-node links are the slowest and are where the
//! contention the paper's training-side analysis studies happens.

use lina_simcore::SimDuration;

/// Identifies a device (GPU) in the cluster by global rank.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DeviceId(pub u32);

/// Identifies a worker node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Identifies a network link (an index into [`Topology::link_capacities`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub u32);

/// Kind of a link, for diagnostics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkKind {
    /// Intra-node transmit port of a device.
    NvlinkTx(DeviceId),
    /// Intra-node receive port of a device.
    NvlinkRx(DeviceId),
    /// Inter-node transmit port of a device's NIC.
    NicTx(DeviceId),
    /// Inter-node receive port of a device's NIC.
    NicRx(DeviceId),
}

/// Static description of the cluster hardware.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Number of worker nodes.
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Per-device NVLink bandwidth per direction, bytes/s.
    pub nvlink_bw: f64,
    /// Per-device NIC bandwidth per direction, bytes/s.
    pub nic_bw: f64,
    /// Base latency of an inter-node flow.
    pub inter_latency: SimDuration,
    /// Base latency of an intra-node flow.
    pub intra_latency: SimDuration,
    /// Fixed software overhead of launching one collective operation
    /// (NCCL kernel launch and group setup).
    pub collective_launch_overhead: SimDuration,
    /// Device memory capacity in bytes (A100-40GB in the paper).
    pub device_memory: f64,
    /// Host-to-device transfer bandwidth for DRAM offloading, bytes/s.
    pub pcie_bw: f64,
}

impl ClusterSpec {
    /// The paper's testbed: 4 nodes x 4 A100-40GB, 100 Gbps InfiniBand,
    /// NVLink intra-node.
    pub fn paper_testbed() -> Self {
        ClusterSpec {
            nodes: 4,
            gpus_per_node: 4,
            // NVLink-connected A100s within a node: ~150 GB/s
            // effective per direction per device.
            nvlink_bw: 150e9,
            // 100 Gbps InfiniBand per GPU ~ 12.5 GB/s; effective ~ 12.
            nic_bw: 12e9,
            inter_latency: SimDuration::from_micros(8),
            intra_latency: SimDuration::from_micros(3),
            collective_launch_overhead: SimDuration::from_micros(60),
            device_memory: 40e9,
            pcie_bw: 24e9,
        }
    }

    /// A testbed with the given total GPU count, allocated the way a
    /// shared-cluster scheduler hands out small jobs: 2- and 4-GPU jobs
    /// are scattered one GPU per node (which is why the paper's Table 1
    /// sees inter-node all-to-all costs even at 4 experts), the 8-GPU
    /// job gets two full 4-GPU servers (which is why packing 2 experts
    /// per device "avoids inter-node all-to-all" there), and 16 GPUs
    /// take all four servers.
    ///
    /// # Panics
    ///
    /// Panics if `total_gpus` is not one of 1, 2, 4, 8, or 16.
    pub fn with_total_gpus(total_gpus: usize) -> Self {
        let mut spec = Self::paper_testbed();
        let (nodes, per_node) = match total_gpus {
            1 => (1, 1),
            2 => (2, 1),
            4 => (4, 1),
            8 => (2, 4),
            16 => (4, 4),
            _ => panic!("with_total_gpus: unsupported GPU count {total_gpus}"),
        };
        spec.nodes = nodes;
        spec.gpus_per_node = per_node;
        spec
    }

    /// Total number of devices.
    pub fn total_devices(&self) -> usize {
        self.nodes * self.gpus_per_node
    }
}

/// Concrete topology built from a [`ClusterSpec`]: link tables and
/// device/node mappings.
///
/// # Examples
///
/// ```
/// use lina_netsim::{ClusterSpec, DeviceId, Topology};
///
/// let topo = Topology::new(ClusterSpec::paper_testbed());
/// assert_eq!(topo.devices(), 16);
/// assert!(topo.same_node(DeviceId(0), DeviceId(3)));
/// assert!(!topo.same_node(DeviceId(3), DeviceId(4)));
/// ```
#[derive(Clone, Debug)]
pub struct Topology {
    spec: ClusterSpec,
    link_kinds: Vec<LinkKind>,
    link_capacities: Vec<f64>,
}

impl Topology {
    /// Builds the link tables for a cluster.
    ///
    /// # Panics
    ///
    /// Panics if the spec has zero nodes or zero GPUs per node.
    pub fn new(spec: ClusterSpec) -> Self {
        assert!(spec.nodes > 0, "Topology::new: zero nodes");
        assert!(spec.gpus_per_node > 0, "Topology::new: zero GPUs per node");
        let devices = spec.total_devices();
        let mut link_kinds = Vec::new();
        let mut link_capacities = Vec::new();
        // Layout: [NvTx(d) for d] [NvRx(d) for d] [NicTx(n) for n] [NicRx(n) for n].
        for d in 0..devices {
            link_kinds.push(LinkKind::NvlinkTx(DeviceId(d as u32)));
            link_capacities.push(spec.nvlink_bw);
        }
        for d in 0..devices {
            link_kinds.push(LinkKind::NvlinkRx(DeviceId(d as u32)));
            link_capacities.push(spec.nvlink_bw);
        }
        for d in 0..devices {
            link_kinds.push(LinkKind::NicTx(DeviceId(d as u32)));
            link_capacities.push(spec.nic_bw);
        }
        for d in 0..devices {
            link_kinds.push(LinkKind::NicRx(DeviceId(d as u32)));
            link_capacities.push(spec.nic_bw);
        }
        Topology {
            spec,
            link_kinds,
            link_capacities,
        }
    }

    /// The cluster spec this topology was built from.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Total number of devices.
    pub fn devices(&self) -> usize {
        self.spec.total_devices()
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.spec.nodes
    }

    /// All device ids in rank order.
    pub fn device_ids(&self) -> impl Iterator<Item = DeviceId> {
        (0..self.devices() as u32).map(DeviceId)
    }

    /// Node hosting a device.
    ///
    /// # Panics
    ///
    /// Panics if the device id is out of range.
    pub fn node_of(&self, d: DeviceId) -> NodeId {
        assert!(
            (d.0 as usize) < self.devices(),
            "node_of: device {} out of range",
            d.0
        );
        NodeId(d.0 / self.spec.gpus_per_node as u32)
    }

    /// Local rank of a device within its node.
    pub fn local_rank(&self, d: DeviceId) -> usize {
        d.0 as usize % self.spec.gpus_per_node
    }

    /// Device id for a (node, local rank) pair.
    ///
    /// # Panics
    ///
    /// Panics if the pair is out of range.
    pub fn device_at(&self, node: NodeId, local: usize) -> DeviceId {
        assert!((node.0 as usize) < self.spec.nodes, "device_at: bad node");
        assert!(local < self.spec.gpus_per_node, "device_at: bad local rank");
        DeviceId(node.0 * self.spec.gpus_per_node as u32 + local as u32)
    }

    /// True if the two devices share a node.
    pub fn same_node(&self, a: DeviceId, b: DeviceId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.link_kinds.len()
    }

    /// Capacity of each link in bytes/s, indexed by [`LinkId`].
    pub fn link_capacities(&self) -> &[f64] {
        &self.link_capacities
    }

    /// Kind of a link.
    pub fn link_kind(&self, l: LinkId) -> LinkKind {
        self.link_kinds[l.0 as usize]
    }

    fn nv_tx(&self, d: DeviceId) -> LinkId {
        LinkId(d.0)
    }

    fn nv_rx(&self, d: DeviceId) -> LinkId {
        LinkId(self.devices() as u32 + d.0)
    }

    fn nic_tx(&self, d: DeviceId) -> LinkId {
        LinkId(2 * self.devices() as u32 + d.0)
    }

    fn nic_rx(&self, d: DeviceId) -> LinkId {
        LinkId(3 * self.devices() as u32 + d.0)
    }

    /// Links traversed by a flow from `src` to `dst`. Empty for a
    /// device-local copy (`src == dst`).
    pub fn path(&self, src: DeviceId, dst: DeviceId) -> Vec<LinkId> {
        if src == dst {
            return Vec::new();
        }
        if self.same_node(src, dst) {
            vec![self.nv_tx(src), self.nv_rx(dst)]
        } else {
            vec![self.nic_tx(src), self.nic_rx(dst)]
        }
    }

    /// Base latency of a flow from `src` to `dst`.
    pub fn latency(&self, src: DeviceId, dst: DeviceId) -> SimDuration {
        if src == dst {
            SimDuration::from_micros(1)
        } else if self.same_node(src, dst) {
            self.spec.intra_latency
        } else {
            self.spec.inter_latency
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(ClusterSpec::paper_testbed())
    }

    #[test]
    fn paper_testbed_shape() {
        let t = topo();
        assert_eq!(t.devices(), 16);
        assert_eq!(t.nodes(), 4);
        // 16 NvTx + 16 NvRx + 16 NicTx + 16 NicRx.
        assert_eq!(t.link_count(), 64);
    }

    #[test]
    fn node_and_local_rank_mapping() {
        let t = topo();
        assert_eq!(t.node_of(DeviceId(0)), NodeId(0));
        assert_eq!(t.node_of(DeviceId(3)), NodeId(0));
        assert_eq!(t.node_of(DeviceId(4)), NodeId(1));
        assert_eq!(t.node_of(DeviceId(15)), NodeId(3));
        assert_eq!(t.local_rank(DeviceId(6)), 2);
        assert_eq!(t.device_at(NodeId(1), 2), DeviceId(6));
        for d in t.device_ids() {
            assert_eq!(t.device_at(t.node_of(d), t.local_rank(d)), d);
        }
    }

    #[test]
    fn same_node_predicate() {
        let t = topo();
        assert!(t.same_node(DeviceId(0), DeviceId(3)));
        assert!(!t.same_node(DeviceId(3), DeviceId(4)));
    }

    #[test]
    fn intra_node_path_uses_nvlink() {
        let t = topo();
        let p = t.path(DeviceId(1), DeviceId(2));
        assert_eq!(p.len(), 2);
        assert_eq!(t.link_kind(p[0]), LinkKind::NvlinkTx(DeviceId(1)));
        assert_eq!(t.link_kind(p[1]), LinkKind::NvlinkRx(DeviceId(2)));
    }

    #[test]
    fn inter_node_path_uses_nics() {
        let t = topo();
        let p = t.path(DeviceId(1), DeviceId(14));
        assert_eq!(p.len(), 2);
        assert_eq!(t.link_kind(p[0]), LinkKind::NicTx(DeviceId(1)));
        assert_eq!(t.link_kind(p[1]), LinkKind::NicRx(DeviceId(14)));
    }

    #[test]
    fn loopback_path_is_empty() {
        let t = topo();
        assert!(t.path(DeviceId(5), DeviceId(5)).is_empty());
    }

    #[test]
    fn latency_ordering() {
        let t = topo();
        let local = t.latency(DeviceId(0), DeviceId(0));
        let intra = t.latency(DeviceId(0), DeviceId(1));
        let inter = t.latency(DeviceId(0), DeviceId(4));
        assert!(local < intra);
        assert!(intra < inter);
    }

    #[test]
    fn with_total_gpus_variants() {
        assert_eq!(ClusterSpec::with_total_gpus(2).nodes, 2);
        assert_eq!(ClusterSpec::with_total_gpus(2).gpus_per_node, 1);
        assert_eq!(ClusterSpec::with_total_gpus(4).nodes, 4);
        assert_eq!(ClusterSpec::with_total_gpus(8).nodes, 2);
        assert_eq!(ClusterSpec::with_total_gpus(8).gpus_per_node, 4);
        assert_eq!(ClusterSpec::with_total_gpus(16).nodes, 4);
    }

    #[test]
    fn link_capacities_match_kinds() {
        let t = topo();
        for l in 0..t.link_count() {
            let id = LinkId(l as u32);
            let cap = t.link_capacities()[l];
            match t.link_kind(id) {
                LinkKind::NvlinkTx(_) | LinkKind::NvlinkRx(_) => {
                    assert_eq!(cap, t.spec().nvlink_bw)
                }
                LinkKind::NicTx(_) | LinkKind::NicRx(_) => assert_eq!(cap, t.spec().nic_bw),
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_of_out_of_range_panics() {
        topo().node_of(DeviceId(16));
    }
}
