//! Typed experiment reports.
//!
//! A [`Report`] is what a benchmark scenario *returns* instead of
//! printing: an ordered list of sections (rendered exactly like the
//! historical per-binary stdout) plus named numeric metrics that feed
//! the machine-readable `bench_summary.json`. The two emitters —
//! [`Report::render`] for the plain-text tables and [`Report::to_json`]
//! for the JSON serializer in [`crate::json`] — read the same data, so
//! the human and machine views cannot drift apart.

use crate::json::Json;
use crate::table::Table;

/// One named numeric result, e.g. `("train_a2a_ratio", 0.379, "frac")`.
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    /// Snake-case metric name, unique within its report.
    pub name: String,
    /// The value. Stored as `f64`; non-finite values serialize to JSON
    /// `null`.
    pub value: f64,
    /// Optional unit hint (`"s"`, `"x"`, `"frac"`, `"req/s"`, …).
    pub unit: Option<String>,
}

/// A block of report output, in display order.
#[derive(Clone, Debug)]
pub enum Section {
    /// A rendered table.
    Table(Table),
    /// Free text (shape-check notes, paper comparisons). May contain
    /// embedded newlines; rendering appends one trailing newline, so a
    /// section corresponds to one historical `println!`.
    Text(String),
}

/// The result of running one experiment scenario.
#[derive(Clone, Debug, Default)]
pub struct Report {
    sections: Vec<Section>,
    metrics: Vec<Metric>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Appends a table section.
    pub fn table(&mut self, table: Table) {
        self.sections.push(Section::Table(table));
    }

    /// Appends a text section (one historical `println!`).
    pub fn text(&mut self, text: impl Into<String>) {
        self.sections.push(Section::Text(text.into()));
    }

    /// Records a named metric with no unit.
    pub fn metric(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.push(Metric {
            name: name.into(),
            value,
            unit: None,
        });
    }

    /// Records a named metric with a unit hint.
    pub fn metric_unit(&mut self, name: impl Into<String>, value: f64, unit: &str) {
        self.metrics.push(Metric {
            name: name.into(),
            value,
            unit: Some(unit.to_string()),
        });
    }

    /// The recorded metrics, in insertion order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// The report sections, in display order.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// True if the report has neither sections nor metrics.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty() && self.metrics.is_empty()
    }

    /// Renders the report as the historical plain-text stdout: each
    /// table exactly as [`Table::render`] produces it, each section
    /// followed by one newline (the `println!` the binaries used).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for section in &self.sections {
            match section {
                Section::Table(t) => out.push_str(&t.render()),
                Section::Text(s) => out.push_str(s),
            }
            out.push('\n');
        }
        out
    }

    /// Serializes the report — metrics, tables (as structured rows),
    /// and notes — for inclusion in `bench_summary.json`.
    pub fn to_json(&self) -> Json {
        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                let mut pairs = vec![("name", Json::str(&m.name)), ("value", Json::Num(m.value))];
                if let Some(u) = &m.unit {
                    pairs.push(("unit", Json::str(u)));
                }
                Json::obj(pairs)
            })
            .collect();
        let mut tables = Vec::new();
        let mut notes = Vec::new();
        for section in &self.sections {
            match section {
                Section::Table(t) => tables.push(Json::obj(vec![
                    ("title", Json::str(t.title())),
                    (
                        "headers",
                        Json::Arr(t.headers().iter().map(Json::str).collect()),
                    ),
                    (
                        "rows",
                        Json::Arr(
                            t.rows()
                                .iter()
                                .map(|r| Json::Arr(r.iter().map(Json::str).collect()))
                                .collect(),
                        ),
                    ),
                ])),
                Section::Text(s) => notes.push(Json::str(s)),
            }
        }
        Json::obj(vec![
            ("metrics", Json::Arr(metrics)),
            ("tables", Json::Arr(tables)),
            ("notes", Json::Arr(notes)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new();
        let mut t = Table::new("demo", &["k", "v"]);
        t.row(&["a".into(), "1".into()]);
        r.table(t);
        r.text("note line");
        r.metric("speedup", 1.5);
        r.metric_unit("step_time", 0.25, "s");
        r
    }

    #[test]
    fn render_matches_println_sequence() {
        let r = sample();
        let s = r.render();
        // Table render (title, header, separator, row) + blank line
        // from the section newline, then the text line.
        assert!(s.contains("== demo ==\n"));
        assert!(s.contains("\n\nnote line\n"));
    }

    #[test]
    fn json_contains_metrics_tables_notes() {
        let r = sample();
        let j = r.to_json().render_compact();
        assert!(j.contains(r#"{"name":"speedup","value":1.5}"#));
        assert!(j.contains(r#"{"name":"step_time","value":0.25,"unit":"s"}"#));
        assert!(j.contains(r#""title":"demo""#));
        assert!(j.contains(r#"["a","1"]"#));
        assert!(j.contains(r#""notes":["note line"]"#));
    }

    #[test]
    fn empty_report() {
        let r = Report::new();
        assert!(r.is_empty());
        assert_eq!(r.render(), "");
        assert!(!sample().is_empty());
    }
}
