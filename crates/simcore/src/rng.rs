//! Deterministic random number generation.
//!
//! The whole evaluation must be reproducible bit-for-bit, so every
//! stochastic component draws from an explicitly seeded [`Rng`]. The
//! implementation is xoshiro256** seeded through SplitMix64 — a small,
//! well-studied generator with excellent statistical quality and no
//! dependency on platform entropy.
//!
//! Beyond the raw generator this module provides the distributions the
//! workload model needs: uniforms, Bernoulli, normal (Box–Muller), Zipf
//! (rejection-free inversion over a finite support), and O(1) categorical
//! sampling via Walker's alias method.

/// SplitMix64 step, used for seeding and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
///
/// # Examples
///
/// ```
/// use lina_simcore::Rng;
///
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let x = a.below(10);
/// assert!(x < 10);
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the last Box–Muller transform.
    gauss_cache: Option<f64>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            gauss_cache: None,
        }
    }

    /// Derives an independent child generator. Streams derived with
    /// different tags are statistically independent, which lets components
    /// own private generators without coupling their consumption order.
    pub fn derive(&self, tag: u64) -> Rng {
        let mut sm = self.s[0] ^ self.s[3] ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            gauss_cache: None,
        }
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1).
    pub fn f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniform dyadic rational in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in [0, bound). Uses Lemire's multiply-shift with
    /// rejection to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below: bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform usize in [0, bound).
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform integer in [lo, hi].
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "Rng::range_inclusive: lo > hi");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform f64 in [lo, hi).
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal via Box–Muller, cached in pairs.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_cache.take() {
            return z;
        }
        // Draw u1 in (0, 1] to keep ln finite.
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_cache = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Log-normal multiplicative jitter centred on 1.0 with the given
    /// sigma; useful for realistic duration noise.
    pub fn jitter(&mut self, sigma: f64) -> f64 {
        (self.normal() * sigma).exp()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Uniformly chooses one element; `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }

    /// Samples an index from an unnormalized weight vector by inversion.
    /// For repeated sampling from the same weights prefer [`AliasTable`].
    ///
    /// # Panics
    ///
    /// Panics if the weights are empty, contain negatives, or sum to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index: empty weights");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "weighted_index: bad weight {w}");
                w
            })
            .sum();
        assert!(total > 0.0, "weighted_index: zero total weight");
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

/// Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank = k) ∝ 1 / (k + 1)^s`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution for `n` ranks and exponent `s >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf::new: n must be positive");
        assert!(s >= 0.0 && s.is_finite(), "Zipf::new: bad exponent {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("n > 0");
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the support is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Samples a rank by binary search over the CDF.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

/// Walker's alias method for O(1) categorical sampling.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds a table from unnormalized non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if the weights are empty, contain negatives/NaN, or sum to
    /// zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "AliasTable::new: empty weights");
        let n = weights.len();
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "AliasTable::new: bad weight {w}");
                w
            })
            .sum();
        assert!(total > 0.0, "AliasTable::new: zero total weight");

        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers: everything remaining keeps probability 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no categories (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Samples a category index in O(1).
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let i = rng.index(self.prob.len());
        if rng.f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_is_deterministic_and_distinct() {
        let root = Rng::new(7);
        let mut c1 = root.derive(1);
        let mut c1b = root.derive(1);
        let mut c2 = root.derive(2);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound_and_covers() {
        let mut rng = Rng::new(9);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = rng.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive_endpoints() {
        let mut rng = Rng::new(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let v = rng.range_inclusive(5, 8);
            assert!((5..=8).contains(&v));
            lo_seen |= v == 5;
            hi_seen |= v == 8;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::new(13);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(17);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_is_decreasing() {
        let z = Zipf::new(16, 1.2);
        let total: f64 = (0..16).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for k in 1..16 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-15);
        }
    }

    #[test]
    fn zipf_sample_matches_pmf() {
        let z = Zipf::new(8, 1.0);
        let mut rng = Rng::new(23);
        let n = 200_000;
        let mut counts = [0usize; 8];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            assert!(
                (emp - z.pmf(k)).abs() < 0.01,
                "rank {k}: empirical {emp} vs pmf {}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn alias_table_matches_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights);
        let mut rng = Rng::new(29);
        let n = 400_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        for i in 0..4 {
            let expected = weights[i] / 10.0;
            let emp = counts[i] as f64 / n as f64;
            assert!(
                (emp - expected).abs() < 0.01,
                "cat {i}: {emp} vs {expected}"
            );
        }
    }

    #[test]
    fn alias_table_zero_weight_categories_never_sampled() {
        let table = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]);
        let mut rng = Rng::new(31);
        for _ in 0..10_000 {
            let s = table.sample(&mut rng);
            assert!(s == 1 || s == 3);
        }
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        let mut rng = Rng::new(37);
        for _ in 0..1_000 {
            let i = rng.weighted_index(&[0.0, 5.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        Rng::new(0).below(0);
    }
}
