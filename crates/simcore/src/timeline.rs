//! Execution timeline recording and analysis.
//!
//! The paper's measurements (Figures 2, 5, 7, 8; Tables 3, 4) come from
//! PyTorch-Profiler-style timelines of CUDA streams. This module records
//! `(stream, kind, start, end)` spans during simulation and answers the
//! queries the evaluation needs: busy time within a window, utilization,
//! blocking periods, and pipelining efficiency (the fraction of non-idle
//! compute-stream time during a communication span).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::time::{SimDuration, SimTime};

/// Identifies a stream in the timeline: a (device, lane) pair.
///
/// Lanes mirror the CUDA streams in the paper's figures: one compute
/// stream and dedicated communication streams per device.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StreamId {
    /// Owning device index.
    pub device: u32,
    /// Stream lane on that device.
    pub lane: Lane,
}

/// Stream lanes, mirroring the paper's Stream a/b/c.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Lane {
    /// Computation stream (the paper's Stream a).
    Compute,
    /// All-to-all communication stream (the paper's Stream c).
    AllToAll,
    /// Allreduce communication stream (the paper's Stream b).
    Allreduce,
    /// Control/scheduling activity (Lina's scheduler threads).
    Control,
}

impl Lane {
    /// Short label used when rendering timelines.
    pub fn label(self) -> &'static str {
        match self {
            Lane::Compute => "comp",
            Lane::AllToAll => "a2a ",
            Lane::Allreduce => "ar  ",
            Lane::Control => "ctrl",
        }
    }
}

/// Category of the work a span represents. Used for per-kind aggregation
/// (e.g. "total all-to-all time in the backward pass").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SpanKind {
    /// Attention (and other non-MoE) computation.
    Attention,
    /// Gating network computation.
    Gate,
    /// Expert FFN computation.
    ExpertFfn,
    /// Combine (weighted-sum / reshape) computation.
    Combine,
    /// Optimizer step computation.
    Optimizer,
    /// All-to-all communication.
    AllToAll,
    /// Allreduce communication.
    Allreduce,
    /// Point-to-point or broadcast control communication.
    ControlComm,
    /// Scheduler decision-making overhead.
    SchedOverhead,
    /// Expert weight swap (DRAM offload traffic).
    WeightSwap,
    /// Anything else.
    Other,
}

impl SpanKind {
    /// True for communication kinds.
    pub fn is_comm(self) -> bool {
        matches!(
            self,
            SpanKind::AllToAll | SpanKind::Allreduce | SpanKind::ControlComm
        )
    }

    /// True for computation kinds.
    pub fn is_compute(self) -> bool {
        matches!(
            self,
            SpanKind::Attention
                | SpanKind::Gate
                | SpanKind::ExpertFfn
                | SpanKind::Combine
                | SpanKind::Optimizer
        )
    }

    /// Single-character glyph used when rendering timelines.
    pub fn glyph(self) -> char {
        match self {
            SpanKind::Attention => 'A',
            SpanKind::Gate => 'G',
            SpanKind::ExpertFfn => 'F',
            SpanKind::Combine => 'C',
            SpanKind::Optimizer => 'O',
            SpanKind::AllToAll => '#',
            SpanKind::Allreduce => '=',
            SpanKind::ControlComm => '.',
            SpanKind::SchedOverhead => 's',
            SpanKind::WeightSwap => 'w',
            SpanKind::Other => '?',
        }
    }
}

/// One recorded interval of activity on a stream.
#[derive(Clone, Debug)]
pub struct Span {
    /// Stream the activity ran on.
    pub stream: StreamId,
    /// Work category.
    pub kind: SpanKind,
    /// Start instant (inclusive).
    pub start: SimTime,
    /// End instant (exclusive).
    pub end: SimTime,
    /// Free-form label, e.g. `"L3 a2a#1 chunk2/5"`.
    pub label: String,
}

impl Span {
    /// Span length.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// Overlap of this span with the window `[lo, hi)`.
    pub fn overlap(&self, lo: SimTime, hi: SimTime) -> SimDuration {
        let s = self.start.max(lo);
        let e = self.end.min(hi);
        e.saturating_since(s)
    }
}

/// Records spans and answers timeline queries.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    spans: Vec<Span>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed span.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `end < start`.
    pub fn record(
        &mut self,
        stream: StreamId,
        kind: SpanKind,
        start: SimTime,
        end: SimTime,
        label: impl Into<String>,
    ) {
        debug_assert!(end >= start, "Timeline::record: end before start");
        self.spans.push(Span {
            stream,
            kind,
            start,
            end,
            label: label.into(),
        });
    }

    /// All recorded spans in insertion order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Latest end instant over all spans; `SimTime::ZERO` when empty.
    pub fn horizon(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Spans matching a predicate.
    pub fn filter<'a>(
        &'a self,
        pred: impl Fn(&Span) -> bool + 'a,
    ) -> impl Iterator<Item = &'a Span> + 'a {
        self.spans.iter().filter(move |s| pred(s))
    }

    /// Total duration of spans of a given kind (summed even if they
    /// overlap in time across devices).
    pub fn total_by_kind(&self, kind: SpanKind) -> SimDuration {
        self.spans
            .iter()
            .filter(|s| s.kind == kind)
            .map(Span::duration)
            .sum()
    }

    /// Union (non-double-counted) busy time of the selected spans within
    /// the window `[lo, hi)`.
    pub fn busy_time_in(
        &self,
        lo: SimTime,
        hi: SimTime,
        pred: impl Fn(&Span) -> bool,
    ) -> SimDuration {
        let mut intervals: Vec<(SimTime, SimTime)> = self
            .spans
            .iter()
            .filter(|s| pred(s))
            .map(|s| (s.start.max(lo), s.end.min(hi)))
            .filter(|(s, e)| e > s)
            .collect();
        intervals.sort();
        let mut total = SimDuration::ZERO;
        let mut cur: Option<(SimTime, SimTime)> = None;
        for (s, e) in intervals {
            match cur {
                None => cur = Some((s, e)),
                Some((cs, ce)) => {
                    if s <= ce {
                        cur = Some((cs, ce.max(e)));
                    } else {
                        total += ce - cs;
                        cur = Some((s, e));
                    }
                }
            }
        }
        if let Some((cs, ce)) = cur {
            total += ce - cs;
        }
        total
    }

    /// Busy fraction of a stream within `[lo, hi)`.
    pub fn utilization(&self, stream: StreamId, lo: SimTime, hi: SimTime) -> f64 {
        let window = hi.saturating_since(lo);
        if window == SimDuration::ZERO {
            return 0.0;
        }
        let busy = self.busy_time_in(lo, hi, |s| s.stream == stream);
        busy.ratio(window)
    }

    /// Mean busy fraction of all compute lanes over the whole timeline —
    /// the "average GPU utilization" of Table 4.
    pub fn mean_compute_utilization(&self, devices: u32) -> f64 {
        let hi = self.horizon();
        if hi == SimTime::ZERO || devices == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for d in 0..devices {
            total += self.utilization(
                StreamId {
                    device: d,
                    lane: Lane::Compute,
                },
                SimTime::ZERO,
                hi,
            );
        }
        total / devices as f64
    }

    /// Pipelining efficiency (Table 3): the fraction of time within the
    /// selected communication spans during which the same device's compute
    /// stream is busy.
    pub fn pipelining_efficiency(&self, comm_kind: SpanKind) -> f64 {
        let mut comm_total = SimDuration::ZERO;
        let mut overlap_total = SimDuration::ZERO;
        for comm in self.spans.iter().filter(|s| s.kind == comm_kind) {
            comm_total += comm.duration();
            let compute_stream = StreamId {
                device: comm.stream.device,
                lane: Lane::Compute,
            };
            overlap_total +=
                self.busy_time_in(comm.start, comm.end, |s| s.stream == compute_stream);
        }
        overlap_total.ratio(comm_total)
    }

    /// Renders an ASCII timeline of the window `[lo, hi)` with `width`
    /// character columns, one row per (device, lane) that has activity.
    /// Intended for the Figure 2/5/7/8 style outputs.
    pub fn render_ascii(&self, lo: SimTime, hi: SimTime, width: usize) -> String {
        let window = hi.saturating_since(lo);
        if window == SimDuration::ZERO || width == 0 {
            return String::new();
        }
        let mut streams: BTreeMap<StreamId, Vec<&Span>> = BTreeMap::new();
        for s in &self.spans {
            if s.overlap(lo, hi) > SimDuration::ZERO {
                streams.entry(s.stream).or_default().push(s);
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "timeline [{} .. {}] ({} per column)",
            lo,
            hi,
            SimDuration::from_nanos(window.as_nanos() / width as u64)
        );
        for (stream, spans) in &streams {
            let mut row = vec![' '; width];
            for s in spans {
                let sc = ((s.start.max(lo) - lo).as_nanos() as u128 * width as u128
                    / window.as_nanos() as u128) as usize;
                let ec = ((s.end.min(hi) - lo).as_nanos() as u128 * width as u128
                    / window.as_nanos() as u128) as usize;
                let ec = ec.max(sc + 1).min(width);
                for c in row.iter_mut().take(ec).skip(sc) {
                    *c = s.kind.glyph();
                }
            }
            let _ = writeln!(
                out,
                "dev{:>2} {} |{}|",
                stream.device,
                stream.lane.label(),
                row.into_iter().collect::<String>()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(device: u32, lane: Lane) -> StreamId {
        StreamId { device, lane }
    }

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn record_and_totals() {
        let mut t = Timeline::new();
        t.record(
            sid(0, Lane::Compute),
            SpanKind::ExpertFfn,
            ms(0),
            ms(5),
            "ffn",
        );
        t.record(
            sid(0, Lane::AllToAll),
            SpanKind::AllToAll,
            ms(5),
            ms(15),
            "a2a",
        );
        t.record(
            sid(1, Lane::AllToAll),
            SpanKind::AllToAll,
            ms(5),
            ms(15),
            "a2a",
        );
        assert_eq!(
            t.total_by_kind(SpanKind::AllToAll),
            SimDuration::from_millis(20)
        );
        assert_eq!(
            t.total_by_kind(SpanKind::ExpertFfn),
            SimDuration::from_millis(5)
        );
        assert_eq!(t.horizon(), ms(15));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn busy_time_merges_overlaps() {
        let mut t = Timeline::new();
        t.record(
            sid(0, Lane::Compute),
            SpanKind::Attention,
            ms(0),
            ms(10),
            "",
        );
        t.record(sid(0, Lane::Compute), SpanKind::Gate, ms(5), ms(12), "");
        t.record(sid(0, Lane::Compute), SpanKind::Combine, ms(20), ms(25), "");
        let busy = t.busy_time_in(ms(0), ms(30), |s| s.stream == sid(0, Lane::Compute));
        assert_eq!(busy, SimDuration::from_millis(17));
    }

    #[test]
    fn busy_time_respects_window() {
        let mut t = Timeline::new();
        t.record(
            sid(0, Lane::Compute),
            SpanKind::Attention,
            ms(0),
            ms(10),
            "",
        );
        let busy = t.busy_time_in(ms(4), ms(6), |_| true);
        assert_eq!(busy, SimDuration::from_millis(2));
    }

    #[test]
    fn utilization_fraction() {
        let mut t = Timeline::new();
        t.record(sid(0, Lane::Compute), SpanKind::Attention, ms(0), ms(5), "");
        let u = t.utilization(sid(0, Lane::Compute), ms(0), ms(10));
        assert!((u - 0.5).abs() < 1e-9);
        assert_eq!(t.utilization(sid(0, Lane::Compute), ms(0), ms(0)), 0.0);
    }

    #[test]
    fn mean_compute_utilization_across_devices() {
        let mut t = Timeline::new();
        t.record(
            sid(0, Lane::Compute),
            SpanKind::Attention,
            ms(0),
            ms(10),
            "",
        );
        t.record(sid(1, Lane::Compute), SpanKind::Attention, ms(0), ms(5), "");
        let u = t.mean_compute_utilization(2);
        assert!((u - 0.75).abs() < 1e-9);
    }

    #[test]
    fn pipelining_efficiency_counts_compute_overlap() {
        let mut t = Timeline::new();
        // 10ms a2a on device 0; compute busy for 4ms of it.
        t.record(
            sid(0, Lane::AllToAll),
            SpanKind::AllToAll,
            ms(0),
            ms(10),
            "",
        );
        t.record(sid(0, Lane::Compute), SpanKind::ExpertFfn, ms(2), ms(6), "");
        // Compute on another device must not count.
        t.record(
            sid(1, Lane::Compute),
            SpanKind::ExpertFfn,
            ms(0),
            ms(10),
            "",
        );
        let eff = t.pipelining_efficiency(SpanKind::AllToAll);
        assert!((eff - 0.4).abs() < 1e-9, "eff {eff}");
    }

    #[test]
    fn pipelining_efficiency_empty_is_zero() {
        let t = Timeline::new();
        assert_eq!(t.pipelining_efficiency(SpanKind::AllToAll), 0.0);
    }

    #[test]
    fn ascii_render_contains_glyphs() {
        let mut t = Timeline::new();
        t.record(sid(0, Lane::Compute), SpanKind::ExpertFfn, ms(0), ms(5), "");
        t.record(
            sid(0, Lane::AllToAll),
            SpanKind::AllToAll,
            ms(5),
            ms(10),
            "",
        );
        let art = t.render_ascii(ms(0), ms(10), 20);
        assert!(art.contains('F'));
        assert!(art.contains('#'));
        assert!(art.contains("dev 0 comp"));
    }

    #[test]
    fn span_overlap() {
        let s = Span {
            stream: sid(0, Lane::Compute),
            kind: SpanKind::Other,
            start: ms(5),
            end: ms(10),
            label: String::new(),
        };
        assert_eq!(s.overlap(ms(0), ms(7)), SimDuration::from_millis(2));
        assert_eq!(s.overlap(ms(12), ms(20)), SimDuration::ZERO);
        assert_eq!(s.duration(), SimDuration::from_millis(5));
    }
}
