//! # lina-simcore
//!
//! Discrete-event simulation substrate for the Lina reproduction:
//! deterministic time ([`SimTime`]/[`SimDuration`]), an event queue with
//! deterministic tie-breaking, a seedable RNG with the distributions the
//! workload model needs, statistics (percentiles/CDFs), a CUDA-stream-style
//! timeline recorder, and plain-text table rendering for benchmark output.
//!
//! Nothing in this crate knows about MoE or networks; it is the common
//! ground the rest of the workspace stands on.

#![warn(missing_docs)]

pub mod events;
pub mod json;
pub mod report;
pub mod rng;
pub mod stats;
pub mod table;
pub mod time;
pub mod timeline;

pub use events::{EventQueue, QueueKind};
pub use json::Json;
pub use report::{Metric, Report, Section};
pub use rng::{AliasTable, Rng, Zipf};
pub use stats::{geomean, Histogram, Samples, Summary, Welford};
pub use table::{format_bytes, format_pct, format_secs, format_speedup, Align, Table};
pub use time::{SimDuration, SimTime};
pub use timeline::{Lane, Span, SpanKind, StreamId, Timeline};
