//! A deterministic discrete-event queue.
//!
//! Ties on time are broken by insertion order, so simulations that pop
//! events and react to them are fully deterministic regardless of payload
//! type.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the queue: fires at `time`, carries `payload`.
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first, then by
        // insertion order for determinism.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with deterministic tie-breaking.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Pops the earliest event only if it fires at or before `time`.
    pub fn pop_due(&mut self, time: SimTime) -> Option<(SimTime, T)> {
        if self.peek_time()? <= time {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3), "c");
        q.push(t(1), "a");
        q.push(t(2), "b");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert_eq!(q.pop(), Some((t(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn pop_due_respects_deadline() {
        let mut q = EventQueue::new();
        q.push(t(10), "late");
        q.push(t(1), "early");
        assert_eq!(q.pop_due(t(5)), Some((t(1), "early")));
        assert_eq!(q.pop_due(t(5)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
        q.clear();
        assert!(q.is_empty());
    }
}
