//! A deterministic discrete-event queue with pluggable backends.
//!
//! Ties on time are broken by insertion order, so simulations that pop
//! events and react to them are fully deterministic regardless of payload
//! type — and regardless of which backend holds the events. Two backends
//! are provided:
//!
//! * [`QueueKind::BinaryHeap`] (the default): a plain binary heap,
//!   `O(log n)` per operation, minimal constant factor at small sizes.
//! * [`QueueKind::Calendar`]: a bucketed calendar queue (Brown 1988).
//!   Events hash into a ring of time buckets of equal width; when the
//!   queue stays near its resize band the expected cost per operation is
//!   `O(1)`. The width and bucket count adapt to the live event
//!   population, so both dense serving traces and sparse control ticks
//!   stay fast.
//!
//! Both backends pop in exactly the same order — (time, insertion seq) —
//! which the `event_queue_backends_agree` property test pins down.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Which backend an [`EventQueue`] uses. Pop order is identical across
/// kinds; only the cost profile differs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueKind {
    /// Binary-heap backend (`O(log n)` ops, the historical default).
    #[default]
    BinaryHeap,
    /// Bucketed calendar-queue backend (amortized `O(1)` ops on
    /// steady-state event populations).
    Calendar,
}

impl QueueKind {
    /// Parses `"heap"` / `"calendar"` (case-insensitive).
    pub fn parse(s: &str) -> Option<QueueKind> {
        match s.to_ascii_lowercase().as_str() {
            "heap" | "binary_heap" | "binaryheap" => Some(QueueKind::BinaryHeap),
            "calendar" => Some(QueueKind::Calendar),
            _ => None,
        }
    }

    /// The kind's lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            QueueKind::BinaryHeap => "heap",
            QueueKind::Calendar => "calendar",
        }
    }
}

/// An entry in the queue: fires at `time`, carries `payload`.
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first, then by
        // insertion order for determinism.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Calendar-queue backend: a ring of `nbuckets` (power of two) buckets
/// each covering `width` nanoseconds; an event at time `t` lives in
/// bucket `(t / width) % nbuckets`. Dequeue scans buckets starting at
/// the bucket holding the current lower bound `last`, accepting only
/// events that fall inside the scanned bucket's current "year" window;
/// equal times always hash to the same bucket, so a (time, seq) min-scan
/// within one bucket reproduces the heap's tie-breaking exactly.
struct Calendar<T> {
    buckets: Vec<Vec<Entry<T>>>,
    /// Bucket width in nanoseconds (>= 1).
    width: u64,
    /// Total live entries.
    len: usize,
    /// Lower bound on the minimum pending time; dequeue scans forward
    /// from here.
    last: u64,
    /// Cached location of the minimum entry, kept warm by `push`/`pop`.
    cached_min: Option<(usize, usize)>,
}

const CAL_MIN_BUCKETS: usize = 8;

impl<T> Calendar<T> {
    fn new() -> Self {
        Calendar {
            buckets: (0..CAL_MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width: 1024,
            len: 0,
            last: 0,
            cached_min: None,
        }
    }

    fn bucket_of(&self, time: u64) -> usize {
        ((time / self.width) as usize) & (self.buckets.len() - 1)
    }

    fn push(&mut self, entry: Entry<T>) {
        let t = entry.time.as_nanos();
        if self.len == 0 || t < self.last {
            self.last = t;
        }
        let b = self.bucket_of(t);
        let better = match self.cached_min {
            Some((cb, ci)) => {
                let cur = &self.buckets[cb][ci];
                (entry.time, entry.seq) < (cur.time, cur.seq)
            }
            None => self.len == 0,
        };
        self.buckets[b].push(entry);
        if better {
            self.cached_min = Some((b, self.buckets[b].len() - 1));
        }
        self.len += 1;
        if self.len > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// Locates the minimum (time, seq) entry without removing it.
    fn find_min(&self) -> Option<(usize, usize)> {
        if self.len == 0 {
            return None;
        }
        if self.cached_min.is_some() {
            return self.cached_min;
        }
        let n = self.buckets.len();
        let start_unit = self.last / self.width;
        // One "year": scan each bucket once, accepting only entries
        // inside the bucket's current window. The first hit is the
        // global minimum because earlier windows were empty.
        for k in 0..n as u64 {
            let unit = start_unit + k;
            let b = (unit as usize) & (n - 1);
            let threshold = (unit as u128 + 1) * self.width as u128;
            let mut best: Option<(usize, SimTime, u64)> = None;
            for (i, e) in self.buckets[b].iter().enumerate() {
                if (e.time.as_nanos() as u128) < threshold {
                    let better = match best {
                        Some((_, bt, bs)) => (e.time, e.seq) < (bt, bs),
                        None => true,
                    };
                    if better {
                        best = Some((i, e.time, e.seq));
                    }
                }
            }
            if let Some((i, _, _)) = best {
                return Some((b, i));
            }
        }
        // Every pending event is more than a year ahead of `last`:
        // direct O(n) search for the global minimum.
        let mut best: Option<(usize, usize, SimTime, u64)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, e) in bucket.iter().enumerate() {
                let better = match best {
                    Some((_, _, bt, bs)) => (e.time, e.seq) < (bt, bs),
                    None => true,
                };
                if better {
                    best = Some((b, i, e.time, e.seq));
                }
            }
        }
        best.map(|(b, i, _, _)| (b, i))
    }

    fn peek_time(&self) -> Option<SimTime> {
        let (b, i) = self.find_min()?;
        Some(self.buckets[b][i].time)
    }

    fn pop(&mut self) -> Option<(SimTime, T)> {
        let (b, i) = self.find_min()?;
        let entry = self.buckets[b].swap_remove(i);
        self.len -= 1;
        self.last = entry.time.as_nanos();
        // swap_remove may have moved an entry into slot `i`; drop the
        // cache rather than track it.
        self.cached_min = None;
        if self.buckets.len() > CAL_MIN_BUCKETS && self.len < self.buckets.len() / 2 {
            self.resize(self.buckets.len() / 2);
        }
        Some((entry.time, entry.payload))
    }

    /// Rebuilds the ring with `nbuckets` buckets and a width matched to
    /// the live event span (aiming for ~1 event per bucket).
    fn resize(&mut self, nbuckets: usize) {
        let entries: Vec<Entry<T>> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for e in &entries {
            lo = lo.min(e.time.as_nanos());
            hi = hi.max(e.time.as_nanos());
        }
        if !entries.is_empty() {
            self.width = ((hi - lo) / entries.len() as u64).max(1);
            self.last = self.last.min(lo);
        }
        self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        self.cached_min = None;
        for e in entries {
            let b = self.bucket_of(e.time.as_nanos());
            self.buckets[b].push(e);
        }
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
        self.last = 0;
        self.cached_min = None;
    }
}

enum Backend<T> {
    Heap(BinaryHeap<Entry<T>>),
    Calendar(Calendar<T>),
}

/// A time-ordered event queue with deterministic tie-breaking.
pub struct EventQueue<T> {
    backend: Backend<T>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            backend: Backend::Heap(BinaryHeap::new()),
            next_seq: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue on the default binary-heap backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty queue on the given backend.
    pub fn with_kind(kind: QueueKind) -> Self {
        let backend = match kind {
            QueueKind::BinaryHeap => Backend::Heap(BinaryHeap::new()),
            QueueKind::Calendar => Backend::Calendar(Calendar::new()),
        };
        EventQueue {
            backend,
            next_seq: 0,
        }
    }

    /// The backend this queue runs on.
    pub fn kind(&self) -> QueueKind {
        match self.backend {
            Backend::Heap(_) => QueueKind::BinaryHeap,
            Backend::Calendar(_) => QueueKind::Calendar,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.backend {
            Backend::Heap(h) => h.push(Entry { time, seq, payload }),
            Backend::Calendar(c) => c.push(Entry { time, seq, payload }),
        }
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Heap(h) => h.peek().map(|e| e.time),
            Backend::Calendar(c) => c.peek_time(),
        }
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        match &mut self.backend {
            Backend::Heap(h) => h.pop().map(|e| (e.time, e.payload)),
            Backend::Calendar(c) => c.pop(),
        }
    }

    /// Pops the earliest event only if it fires at or before `time`.
    pub fn pop_due(&mut self, time: SimTime) -> Option<(SimTime, T)> {
        if self.peek_time()? <= time {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(h) => h.len(),
            Backend::Calendar(c) => c.len,
        }
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Heap(h) => h.clear(),
            Backend::Calendar(c) => c.clear(),
        }
    }

    /// Drops every pending event whose payload fails the predicate.
    /// Surviving events keep their original insertion sequence, so pop
    /// order (including ties) is unchanged.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        match &mut self.backend {
            Backend::Heap(h) => h.retain(|e| keep(&e.payload)),
            Backend::Calendar(c) => {
                let mut removed = 0;
                for b in &mut c.buckets {
                    let before = b.len();
                    b.retain(|e| keep(&e.payload));
                    removed += before - b.len();
                }
                if removed > 0 {
                    c.len -= removed;
                    c.cached_min = None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn kinds() -> [QueueKind; 2] {
        [QueueKind::BinaryHeap, QueueKind::Calendar]
    }

    #[test]
    fn pops_in_time_order() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.push(t(3), "c");
            q.push(t(1), "a");
            q.push(t(2), "b");
            assert_eq!(q.pop(), Some((t(1), "a")));
            assert_eq!(q.pop(), Some((t(2), "b")));
            assert_eq!(q.pop(), Some((t(3), "c")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            for i in 0..100 {
                q.push(t(5), i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((t(5), i)));
            }
        }
    }

    #[test]
    fn pop_due_respects_deadline() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.push(t(10), "late");
            q.push(t(1), "early");
            assert_eq!(q.pop_due(t(5)), Some((t(1), "early")));
            assert_eq!(q.pop_due(t(5)), None);
            assert_eq!(q.len(), 1);
        }
    }

    #[test]
    fn peek_and_clear() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
            q.push(t(7), ());
            assert_eq!(q.peek_time(), Some(t(7)));
            q.clear();
            assert!(q.is_empty());
        }
    }

    #[test]
    fn retain_preserves_order_of_survivors() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            for i in 0..10 {
                q.push(t(5), i); // all tied on time: order is insertion seq
            }
            q.push(t(1), 100);
            q.push(t(9), 101);
            q.retain(|&p| p % 2 == 0);
            let mut popped = Vec::new();
            while let Some((_, p)) = q.pop() {
                popped.push(p);
            }
            assert_eq!(popped, vec![100, 0, 2, 4, 6, 8], "{kind:?}");
        }
    }

    #[test]
    fn default_kind_is_heap() {
        assert_eq!(EventQueue::<()>::new().kind(), QueueKind::BinaryHeap);
        assert_eq!(QueueKind::default(), QueueKind::BinaryHeap);
    }

    #[test]
    fn kind_parsing() {
        assert_eq!(QueueKind::parse("heap"), Some(QueueKind::BinaryHeap));
        assert_eq!(QueueKind::parse("Calendar"), Some(QueueKind::Calendar));
        assert_eq!(QueueKind::parse("fifo"), None);
        assert_eq!(QueueKind::Calendar.name(), "calendar");
    }

    #[test]
    fn calendar_survives_resize_cycles() {
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        // Grow far past several doublings, then drain fully.
        for i in 0..1000u64 {
            q.push(SimTime::from_nanos(i * 37 % 4096), i);
        }
        let mut last = None;
        for _ in 0..1000 {
            let (time, _) = q.pop().expect("queue must hold 1000 events");
            if let Some(prev) = last {
                assert!(time >= prev, "calendar popped out of order");
            }
            last = Some(time);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn calendar_handles_sparse_far_future_events() {
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        q.push(SimTime::from_nanos(5), "near");
        q.push(SimTime::MAX, "sentinel");
        q.push(SimTime::from_secs_f64(3600.0), "hour");
        assert_eq!(q.pop().map(|(_, p)| p), Some("near"));
        assert_eq!(q.pop().map(|(_, p)| p), Some("hour"));
        assert_eq!(q.pop().map(|(_, p)| p), Some("sentinel"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn calendar_accepts_pushes_earlier_than_last_pop() {
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        q.push(t(100), "late");
        assert_eq!(q.pop().map(|(_, p)| p), Some("late"));
        q.push(t(1), "rewind");
        assert_eq!(q.pop(), Some((t(1), "rewind")));
    }
}
