//! Minimal JSON document model, serializer, and parser.
//!
//! The workspace is dependency-free by construction (`DESIGN.md` §5),
//! so the machine-readable benchmark reports are emitted through this
//! small in-repo serializer instead of an external crate. It covers
//! exactly what the reports need: objects with stable key order,
//! arrays, strings with full escaping, finite numbers (non-finite
//! values serialize as `null`), booleans, and null. [`Json::parse`]
//! reads standard JSON back (the result-regression gate diffs one
//! `bench_summary.json` against another with it).

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order so emitted documents
/// are deterministic and diff-friendly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values render as `null` (JSON has no
    /// representation for them).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience object constructor from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parses a JSON document. Accepts standard JSON (including the
    /// exponent-notation numbers and `\uXXXX` escapes this serializer
    /// never emits); rejects trailing garbage. Errors carry the byte
    /// offset where parsing failed.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Looks up a field of an object (`None` for non-objects and
    /// missing keys; first match wins on duplicate keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value as a compact single-line document.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes the value pretty-printed with two-space indentation
    /// and a trailing newline — the format `bench_summary.json` uses.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            if let Some(n) = indent {
                out.push('\n');
                out.extend(std::iter::repeat_n(' ', n * d));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // Rust's `Display` for f64 is shortest-round-trip
                    // and never produces exponent notation, so the
                    // output is always a valid JSON number.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                pad(out, depth);
                out.push('}');
            }
        }
    }
}

/// Recursive-descent JSON parser over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Consumes `lit` (used for `null`/`true`/`false`).
    fn expect_lit(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.expect_lit("null").map(|()| Json::Null),
            Some(b't') => self.expect_lit("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.expect_lit("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(&format!("unexpected byte {:?}", b as char))),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.pos += 1; // consume '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.pos += 1; // consume opening '"'
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale (the input is valid UTF-8,
            // and no multi-byte sequence contains '"' or '\\' bytes).
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (plus a low surrogate when
    /// the first unit is a high surrogate).
    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&hi) {
            if !self.bytes[self.pos..].starts_with(b"\\u") {
                return Err(self.err("high surrogate without low surrogate"));
            }
            self.pos += 2;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
        } else {
            hi
        };
        char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part per the JSON grammar: a lone `0`, or a nonzero
        // digit followed by any digits (no leading zeros).
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit in number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let v: f64 = text
            .parse()
            .map_err(|_| self.err(&format!("invalid number {text:?}")))?;
        // A magnitude past f64 range would silently re-serialize as
        // `null` (the serializer maps non-finite to `null`); refuse it
        // instead of losing the value.
        if !v.is_finite() {
            return Err(self.err(&format!("number {text:?} overflows f64")));
        }
        Ok(Json::Num(v))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_document() {
        let doc = Json::obj(vec![
            ("id", Json::str("table1")),
            ("count", Json::Num(3.0)),
            ("ratio", Json::Num(0.125)),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
            ("tags", Json::Arr(vec![Json::str("a"), Json::str("b")])),
        ]);
        assert_eq!(
            doc.render_compact(),
            r#"{"id":"table1","count":3,"ratio":0.125,"ok":true,"missing":null,"tags":["a","b"]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = Json::str("a\"b\\c\nd\te\u{1}f");
        assert_eq!(v.render_compact(), "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
    }

    #[test]
    fn non_finite_numbers_are_null() {
        assert_eq!(Json::Num(f64::NAN).render_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render_compact(), "null");
    }

    #[test]
    fn pretty_round_structure() {
        let doc = Json::obj(vec![(
            "xs",
            Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)]),
        )]);
        let s = doc.render_pretty();
        assert_eq!(s, "{\n  \"xs\": [\n    1,\n    2.5\n  ]\n}\n");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).render_pretty(), "[]\n");
        assert_eq!(Json::Obj(vec![]).render_compact(), "{}");
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Json::obj(vec![
            ("id", Json::str("table1")),
            ("count", Json::Num(3.0)),
            ("ratio", Json::Num(-0.125)),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
            (
                "rows",
                Json::Arr(vec![
                    Json::obj(vec![("name", Json::str("a\n\"b\""))]),
                    Json::Arr(vec![]),
                    Json::Obj(vec![]),
                ]),
            ),
        ]);
        assert_eq!(Json::parse(&doc.render_compact()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.render_pretty()).unwrap(), doc);
    }

    #[test]
    fn parse_standard_json_extras() {
        // Exponent notation and \u escapes never come out of the
        // serializer but must parse.
        let v = Json::parse(r#"[1e3, -2.5E-2, "\u0041\ud83d\ude00", "\/"]"#).unwrap();
        assert_eq!(
            v,
            Json::Arr(vec![
                Json::Num(1000.0),
                Json::Num(-0.025),
                Json::str("A\u{1F600}"),
                Json::str("/"),
            ])
        );
    }

    #[test]
    fn parse_round_trips_exponent_notation_losslessly() {
        // Exponent-notation numbers come from external tools, never
        // from this serializer; they must parse to the exact value and
        // survive a render -> parse cycle bit for bit.
        for (text, value) in [
            ("1e-3", 1e-3),
            ("1E-3", 1e-3),
            ("2.5e10", 2.5e10),
            ("-1.25E-7", -1.25e-7),
            ("5e+0", 5.0),
            ("9.109383e-31", 9.109383e-31),
            ("6.02214076e23", 6.02214076e23),
            ("0e0", 0.0),
        ] {
            let parsed = Json::parse(text).unwrap();
            assert_eq!(parsed, Json::Num(value), "{text}");
            let rendered = parsed.render_compact();
            let back = Json::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), value.to_bits(), "{text} -> {rendered}");
        }
    }

    #[test]
    fn fuzzed_numbers_round_trip_bit_for_bit() {
        // Property: every finite f64 bit pattern the serializer can
        // emit survives render -> parse -> render unchanged.
        let mut rng = crate::Rng::new(0x12E5);
        let mut checked = 0;
        while checked < 2_000 {
            let v = f64::from_bits(rng.next_u64());
            if !v.is_finite() {
                continue;
            }
            checked += 1;
            let doc = Json::Arr(vec![Json::Num(v)]);
            let rendered = doc.render_compact();
            let parsed = Json::parse(&rendered).unwrap();
            let back = parsed.as_arr().unwrap()[0].as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {rendered}");
            assert_eq!(parsed.render_compact(), rendered);
        }
        // And random exponent-notation inputs agree with Rust's own
        // float parser — overflow to infinity is a parse error, not a
        // silent `null` on re-serialization.
        for _ in 0..500 {
            let mantissa = (rng.next_u64() % 2_000_001) as i64 - 1_000_000;
            let frac = rng.next_u64() % 1_000;
            let exp = (rng.next_u64() % 641) as i64 - 320;
            let text = format!("{mantissa}.{frac:03}e{exp}");
            let expect: f64 = text.parse().unwrap();
            if expect.is_finite() {
                let parsed = Json::parse(&text).unwrap().as_f64().unwrap();
                assert_eq!(parsed.to_bits(), expect.to_bits(), "{text}");
            } else {
                Json::parse(&text).expect_err(&text);
            }
        }
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1} trailing",
            "\"bad \\q escape\"",
            "\"\\ud800\"",
            // Strict JSON number grammar.
            "01",
            "1.",
            ".5",
            "1e",
            "1e+",
            "-",
            "--1",
            "1e999",
        ] {
            let e = Json::parse(bad).expect_err(bad);
            assert!(e.contains("json parse error at byte"), "{bad}: {e}");
        }
    }

    #[test]
    fn accessors_navigate_documents() {
        let doc = Json::parse(r#"{"scenarios":[{"id":"t1","metrics":[{"name":"m","value":2}]}]}"#)
            .unwrap();
        let s = &doc.get("scenarios").unwrap().as_arr().unwrap()[0];
        assert_eq!(s.get("id").unwrap().as_str(), Some("t1"));
        let m = &s.get("metrics").unwrap().as_arr().unwrap()[0];
        assert_eq!(m.get("value").unwrap().as_f64(), Some(2.0));
        assert_eq!(doc.get("nope"), None);
        assert_eq!(Json::Null.get("x"), None);
        assert_eq!(Json::Bool(true).as_f64(), None);
    }
}
