//! Minimal JSON document model and serializer.
//!
//! The workspace is dependency-free by construction (`DESIGN.md` §5),
//! so the machine-readable benchmark reports are emitted through this
//! small in-repo serializer instead of an external crate. It covers
//! exactly what the reports need: objects with stable key order,
//! arrays, strings with full escaping, finite numbers (non-finite
//! values serialize as `null`), booleans, and null.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order so emitted documents
/// are deterministic and diff-friendly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values render as `null` (JSON has no
    /// representation for them).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience object constructor from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes the value as a compact single-line document.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes the value pretty-printed with two-space indentation
    /// and a trailing newline — the format `bench_summary.json` uses.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            if let Some(n) = indent {
                out.push('\n');
                out.extend(std::iter::repeat_n(' ', n * d));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // Rust's `Display` for f64 is shortest-round-trip
                    // and never produces exponent notation, so the
                    // output is always a valid JSON number.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                pad(out, depth);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_document() {
        let doc = Json::obj(vec![
            ("id", Json::str("table1")),
            ("count", Json::Num(3.0)),
            ("ratio", Json::Num(0.125)),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
            ("tags", Json::Arr(vec![Json::str("a"), Json::str("b")])),
        ]);
        assert_eq!(
            doc.render_compact(),
            r#"{"id":"table1","count":3,"ratio":0.125,"ok":true,"missing":null,"tags":["a","b"]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = Json::str("a\"b\\c\nd\te\u{1}f");
        assert_eq!(v.render_compact(), "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
    }

    #[test]
    fn non_finite_numbers_are_null() {
        assert_eq!(Json::Num(f64::NAN).render_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render_compact(), "null");
    }

    #[test]
    fn pretty_round_structure() {
        let doc = Json::obj(vec![(
            "xs",
            Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)]),
        )]);
        let s = doc.render_pretty();
        assert_eq!(s, "{\n  \"xs\": [\n    1,\n    2.5\n  ]\n}\n");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).render_pretty(), "[]\n");
        assert_eq!(Json::Obj(vec![]).render_compact(), "{}");
    }
}
