//! Simulation time.
//!
//! All simulation clocks use [`SimTime`], an integer nanosecond count since
//! the start of the simulation. Integer time gives a total order that is
//! stable across platforms, which keeps every experiment bit-for-bit
//! reproducible. Durations between instants use the same representation via
//! [`SimDuration`].

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant. Used as a sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime::from_secs_f64: invalid seconds value {secs}"
        );
        let ns = secs * 1e9;
        assert!(ns < u64::MAX as f64, "SimTime::from_secs_f64: overflow");
        SimTime(ns.round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns this instant as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns this instant as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Duration since an earlier instant, saturating at zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration. Used as a sentinel for "forever".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative, NaN, or infinite inputs clamp to zero / MAX
    /// respectively, because durations computed from floating-point rate
    /// arithmetic can legitimately round slightly below zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        // NaN must land in this arm too, so avoid `!(secs > 0.0)`.
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = secs * 1e9;
        if ns >= u64::MAX as f64 {
            return SimDuration::MAX;
        }
        SimDuration(ns.round() as u64)
    }

    /// Creates a duration from fractional milliseconds (see
    /// [`SimDuration::from_secs_f64`] for rounding rules).
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Creates a duration from fractional microseconds (see
    /// [`SimDuration::from_secs_f64`] for rounding rules).
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns this duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns this duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a non-negative factor, saturating.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Ratio of this duration to another, as f64. Returns 0 when `other`
    /// is zero.
    pub fn ratio(self, other: SimDuration) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// Formats a nanosecond count with an automatically chosen unit.
fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns == u64::MAX {
        return write!(f, "inf");
    }
    let v = ns as f64;
    if v < 1e3 {
        write!(f, "{ns}ns")
    } else if v < 1e6 {
        write!(f, "{:.2}us", v / 1e3)
    } else if v < 1e9 {
        write!(f, "{:.2}ms", v / 1e6)
    } else {
        write!(f, "{:.3}s", v / 1e9)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime(")?;
        fmt_ns(self.0, f)?;
        write!(f, ")")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration(")?;
        fmt_ns(self.0, f)?;
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(5), SimTime::from_nanos(5_000));
        assert_eq!(SimTime::from_millis(2), SimTime::from_nanos(2_000_000));
        assert_eq!(
            SimTime::from_secs_f64(1.5),
            SimTime::from_nanos(1_500_000_000)
        );
        assert_eq!(
            SimDuration::from_millis_f64(0.5),
            SimDuration::from_micros(500)
        );
    }

    #[test]
    fn roundtrip_f64() {
        let t = SimTime::from_secs_f64(0.123456789);
        assert!((t.as_secs_f64() - 0.123456789).abs() < 1e-12);
        let d = SimDuration::from_micros_f64(7.25);
        assert!((d.as_micros_f64() - 7.25).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(3);
        assert_eq!(t + d, SimTime::from_millis(13));
        assert_eq!(t - d, SimTime::from_millis(7));
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 3, SimDuration::from_millis(9));
        assert_eq!(d / 3, SimDuration::from_millis(1));
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(1));
        assert_eq!(SimTime::MAX + SimDuration::from_nanos(1), SimTime::MAX);
    }

    #[test]
    fn negative_float_duration_clamps_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1e-12), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn ratio_handles_zero() {
        let d = SimDuration::from_millis(5);
        assert_eq!(d.ratio(SimDuration::ZERO), 0.0);
        assert!((d.ratio(SimDuration::from_millis(10)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_nanos(42).to_string(), "42ns");
        assert_eq!(SimDuration::from_micros(42).to_string(), "42.00us");
        assert_eq!(SimDuration::from_millis(42).to_string(), "42.00ms");
        assert_eq!(SimDuration::from_millis(4200).to_string(), "4.200s");
        assert_eq!(SimDuration::MAX.to_string(), "inf");
    }

    #[test]
    fn ordering_is_total() {
        let mut ts = vec![
            SimTime::from_millis(3),
            SimTime::ZERO,
            SimTime::from_nanos(1),
            SimTime::MAX,
        ];
        ts.sort();
        assert_eq!(
            ts,
            vec![
                SimTime::ZERO,
                SimTime::from_nanos(1),
                SimTime::from_millis(3),
                SimTime::MAX
            ]
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
