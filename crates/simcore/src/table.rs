//! Plain-text table rendering for benchmark outputs.
//!
//! Every table/figure binary in `lina-bench` prints its results through
//! this renderer so outputs stay uniform and greppable.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple text table builder.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers. All
    /// columns default to right alignment except the first.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            aligns,
            rows: Vec::new(),
        }
    }

    /// Overrides a column's alignment.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn align(mut self, col: usize, align: Align) -> Self {
        self.aligns[col] = align;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "Table::row: expected {} cells, got {}",
            self.headers.len(),
            cells.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Appends a row from displayable items.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let render_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i].saturating_sub(cell.chars().count());
                match aligns[i] {
                    Align::Left => {
                        line.push_str(cell);
                        line.extend(std::iter::repeat_n(' ', pad));
                    }
                    Align::Right => {
                        line.extend(std::iter::repeat_n(' ', pad));
                        line.push_str(cell);
                    }
                }
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", render_row(&self.headers, &widths, &self.aligns));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row, &widths, &self.aligns));
        }
        out
    }
}

/// Formats a byte count with binary units.
pub fn format_bytes(bytes: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{:.0}{}", v, UNITS[unit])
    } else {
        format!("{:.2}{}", v, UNITS[unit])
    }
}

/// Formats a duration in seconds with an automatically chosen unit.
pub fn format_secs(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.0}ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2}us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.3}s", secs)
    }
}

/// Formats a ratio as a speedup, e.g. `1.57x`.
pub fn format_speedup(ratio: f64) -> String {
    format!("{ratio:.2}x")
}

/// Formats a fraction as a percentage, e.g. `36.7%`.
pub fn format_pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Header, separator, two rows.
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("name"));
        assert!(lines[3].starts_with("alpha"));
        // Right-aligned numbers end at the same column.
        assert!(lines[3].ends_with('1'));
        assert!(lines[4].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "expected 2 cells")]
    fn wrong_cell_count_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(format_bytes(512.0), "512B");
        assert_eq!(format_bytes(30.0 * 1024.0 * 1024.0), "30.00MiB");
        assert_eq!(format_secs(0.0000005), "500ns");
        assert_eq!(format_secs(0.00025), "250.00us");
        assert_eq!(format_secs(0.259), "259.00ms");
        assert_eq!(format_secs(1.5), "1.500s");
        assert_eq!(format_speedup(1.566), "1.57x");
        assert_eq!(format_pct(0.367), "36.7%");
    }

    #[test]
    fn row_display_helper() {
        let mut t = Table::new("", &["k", "v"]);
        t.row_display(&[&"x", &42]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("42"));
    }
}
