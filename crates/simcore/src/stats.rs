//! Statistics over simulation measurements.
//!
//! The evaluation reports means, medians, tail percentiles and full CDFs
//! of durations. This module provides those over plain `f64` samples plus
//! convenience wrappers for [`SimDuration`].

use crate::time::SimDuration;

/// A growable collection of samples supporting summary queries.
///
/// Percentile queries sort a copy lazily and cache it; pushing new samples
/// invalidates the cache.
///
/// # Examples
///
/// ```
/// use lina_simcore::Samples;
///
/// let mut s = Samples::from_values(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.median(), 2.5);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: Option<Vec<f64>>,
}

impl Samples {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a collection from existing values.
    pub fn from_values(values: Vec<f64>) -> Self {
        Samples {
            values,
            sorted: None,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, value: f64) {
        debug_assert!(
            value.is_finite(),
            "Samples::push: non-finite sample {value}"
        );
        self.values.push(value);
        self.sorted = None;
    }

    /// Adds a duration sample in seconds.
    pub fn push_duration(&mut self, d: SimDuration) {
        self.push(d.as_secs_f64());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw sample values in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Arithmetic mean; 0 for an empty collection.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Population standard deviation; 0 for fewer than two samples.
    pub fn std_dev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.values.len() as f64;
        var.sqrt()
    }

    /// Minimum sample; 0 for an empty collection.
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Maximum sample; 0 for an empty collection.
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    fn sorted(&mut self) -> &[f64] {
        if self.sorted.is_none() {
            let mut s = self.values.clone();
            s.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = Some(s);
        }
        self.sorted.as_deref().expect("just populated")
    }

    /// Percentile `p` in [0, 100] with linear interpolation between order
    /// statistics; 0 for an empty collection.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside [0, 100].
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile: p out of range {p}");
        let s = self.sorted();
        if s.is_empty() {
            return 0.0;
        }
        if s.len() == 1 {
            return s[0];
        }
        let rank = p / 100.0 * (s.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            s[lo]
        } else {
            let frac = rank - lo as f64;
            s[lo] * (1.0 - frac) + s[hi] * frac
        }
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// 95th percentile.
    pub fn p95(&mut self) -> f64 {
        self.percentile(95.0)
    }

    /// 99th percentile.
    pub fn p99(&mut self) -> f64 {
        self.percentile(99.0)
    }

    /// Builds an empirical CDF with `points` evenly spaced probability
    /// levels (plus the max), as `(value, cumulative_probability)` pairs.
    pub fn cdf(&mut self, points: usize) -> Vec<(f64, f64)> {
        let s = self.sorted();
        if s.is_empty() || points == 0 {
            return Vec::new();
        }
        let n = s.len();
        let mut out = Vec::with_capacity(points);
        for i in 1..=points {
            let q = i as f64 / points as f64;
            let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            out.push((s[idx], q));
        }
        out
    }

    /// One-line summary of the distribution.
    pub fn summary(&mut self) -> Summary {
        Summary {
            count: self.len(),
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min(),
            median: self.median(),
            p95: self.p95(),
            p99: self.p99(),
            max: self.max(),
        }
    }
}

/// Summary statistics of a sample collection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

/// Streaming mean/variance via Welford's algorithm, for contexts that
/// cannot afford to retain every sample.
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance; 0 for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Fixed-bucket histogram over [lo, hi); samples outside clamp to the
/// boundary buckets.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` equal-width buckets over
    /// [lo, hi).
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "Histogram::new: zero buckets");
        assert!(lo < hi, "Histogram::new: empty range");
        Histogram {
            lo,
            hi,
            counts: vec![0; buckets],
            total: 0,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, value: f64) {
        let n = self.counts.len();
        let idx = if value <= self.lo {
            0
        } else if value >= self.hi {
            n - 1
        } else {
            (((value - self.lo) / (self.hi - self.lo)) * n as f64) as usize
        };
        self.counts[idx.min(n - 1)] += 1;
        self.total += 1;
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Midpoint of bucket `i`.
    pub fn bucket_mid(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }

    /// Fraction of samples at or below bucket `i`'s upper edge.
    pub fn cumulative_fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let c: u64 = self.counts[..=i].iter().sum();
        c as f64 / self.total as f64
    }
}

/// Computes the geometric mean of strictly positive values; 0 when empty.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean: non-positive value {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_are_zeroed() {
        let mut s = Samples::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.median(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert!(s.cdf(10).is_empty());
    }

    #[test]
    fn basic_summary() {
        let mut s = Samples::from_values(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.median() - 3.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert!((s.std_dev() - (2.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let mut s = Samples::from_values(vec![10.0, 20.0]);
        assert!((s.percentile(50.0) - 15.0).abs() < 1e-12);
        assert!((s.percentile(25.0) - 12.5).abs() < 1e-12);
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.percentile(100.0), 20.0);
    }

    #[test]
    fn percentiles_monotone() {
        let mut s = Samples::from_values((0..100).map(|i| (i * i) as f64).collect());
        let mut last = f64::NEG_INFINITY;
        for p in 0..=100 {
            let v = s.percentile(p as f64);
            assert!(v >= last, "p{p}: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn push_invalidates_cache() {
        let mut s = Samples::from_values(vec![1.0, 2.0, 3.0]);
        assert_eq!(s.median(), 2.0);
        s.push(100.0);
        assert!((s.median() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_max() {
        let mut s = Samples::from_values(vec![3.0, 1.0, 2.0, 5.0, 4.0]);
        let cdf = s.cdf(5);
        assert_eq!(cdf.len(), 5);
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 > w[0].1);
        }
        assert_eq!(cdf.last().expect("nonempty").0, 5.0);
        assert!((cdf.last().expect("nonempty").1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn welford_matches_batch() {
        let values = [1.5, 2.5, 9.0, -3.0, 0.25];
        let mut w = Welford::new();
        for &v in &values {
            w.push(v);
        }
        let s = Samples::from_values(values.to_vec());
        assert!((w.mean() - s.mean()).abs() < 1e-12);
        assert!((w.std_dev() - s.std_dev()).abs() < 1e-12);
        assert_eq!(w.count(), 5);
    }

    #[test]
    fn histogram_buckets_and_cumulative() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        assert_eq!(h.total(), 10);
        assert!(h.counts().iter().all(|&c| c == 1));
        assert!((h.cumulative_fraction(4) - 0.5).abs() < 1e-12);
        assert!((h.bucket_mid(0) - 0.5).abs() < 1e-12);
        // Out-of-range samples clamp.
        h.record(-5.0);
        h.record(50.0);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 2);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn duration_samples() {
        let mut s = Samples::new();
        s.push_duration(SimDuration::from_millis(10));
        s.push_duration(SimDuration::from_millis(20));
        assert!((s.mean() - 0.015).abs() < 1e-12);
    }
}
