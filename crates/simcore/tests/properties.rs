//! Property-based tests of the simulation substrate.

use proptest::prelude::*;

use lina_simcore::{AliasTable, EventQueue, Rng, Samples, SimDuration, SimTime, Zipf};

proptest! {
    #[test]
    fn simtime_add_sub_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let time = SimTime::from_nanos(t);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((time + dur) - time, dur);
        prop_assert_eq!((time + dur) - dur, time);
    }

    #[test]
    fn duration_f64_roundtrip_is_tight(ns in 0u64..10_000_000_000_000) {
        let d = SimDuration::from_nanos(ns);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        // f64 has 53 bits of mantissa; error is bounded by the scale.
        let err = back.as_nanos().abs_diff(ns);
        prop_assert!(err <= 1 + ns / (1 << 50), "{ns} -> {err}");
    }

    #[test]
    fn percentiles_are_monotone_and_bounded(
        mut values in proptest::collection::vec(-1e7f64..1e7, 1..200),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let mut s = Samples::from_values(values.clone());
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(s.percentile(lo) <= s.percentile(hi) + 1e-9);
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(s.percentile(0.0) >= values[0] - 1e-9);
        prop_assert!(s.percentile(100.0) <= values[values.len() - 1] + 1e-9);
    }

    #[test]
    fn mean_lies_between_min_and_max(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let s = Samples::from_values(values);
        prop_assert!(s.min() - 1e-9 <= s.mean() && s.mean() <= s.max() + 1e-9);
    }

    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn rng_below_is_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = Rng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn zipf_pmf_normalizes(n in 1usize..64, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alias_table_samples_only_positive_weights(
        seed in any::<u64>(),
        weights in proptest::collection::vec(0.0f64..10.0, 2..32),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 1e-6);
        let table = AliasTable::new(&weights);
        let mut rng = Rng::new(seed);
        for _ in 0..200 {
            let i = table.sample(&mut rng);
            prop_assert!(i < weights.len());
            // Zero-weight categories are never drawn.
            prop_assert!(weights[i] > 0.0 || weights.iter().all(|&w| w == 0.0));
        }
    }

    #[test]
    fn shuffle_preserves_multiset(seed in any::<u64>(), mut v in proptest::collection::vec(0u32..100, 0..50)) {
        let mut rng = Rng::new(seed);
        let mut shuffled = v.clone();
        rng.shuffle(&mut shuffled);
        shuffled.sort_unstable();
        v.sort_unstable();
        prop_assert_eq!(shuffled, v);
    }
}
