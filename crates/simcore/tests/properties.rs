//! Randomized property tests of the simulation substrate, driven by the
//! crate's own deterministic RNG (the environment vendors no external
//! property-testing framework, so each property sweeps many seeded
//! cases explicitly).

use lina_simcore::{AliasTable, EventQueue, QueueKind, Rng, Samples, SimDuration, SimTime, Zipf};

#[test]
fn simtime_add_sub_roundtrip() {
    let mut rng = Rng::new(0xA11CE);
    for _ in 0..500 {
        let time = SimTime::from_nanos(rng.below(u64::MAX / 4));
        let dur = SimDuration::from_nanos(rng.below(u64::MAX / 4));
        assert_eq!((time + dur) - time, dur);
        assert_eq!((time + dur) - dur, time);
    }
}

#[test]
fn duration_f64_roundtrip_is_tight() {
    let mut rng = Rng::new(0xB0B);
    for _ in 0..500 {
        let ns = rng.below(10_000_000_000_000);
        let d = SimDuration::from_nanos(ns);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        // f64 has 53 bits of mantissa; error is bounded by the scale.
        let err = back.as_nanos().abs_diff(ns);
        assert!(err <= 1 + ns / (1 << 50), "{ns} -> {err}");
    }
}

#[test]
fn percentiles_are_monotone_and_bounded() {
    let mut rng = Rng::new(0xC0DE);
    for _ in 0..100 {
        let n = 1 + rng.index(199);
        let mut values: Vec<f64> = (0..n).map(|_| rng.uniform(-1e7, 1e7)).collect();
        let mut s = Samples::from_values(values.clone());
        let (p1, p2) = (rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0));
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        assert!(s.percentile(lo) <= s.percentile(hi) + 1e-9);
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert!(s.percentile(0.0) >= values[0] - 1e-9);
        assert!(s.percentile(100.0) <= values[values.len() - 1] + 1e-9);
    }
}

#[test]
fn mean_lies_between_min_and_max() {
    let mut rng = Rng::new(0xD1CE);
    for _ in 0..100 {
        let n = 1 + rng.index(99);
        let values: Vec<f64> = (0..n).map(|_| rng.uniform(-1e6, 1e6)).collect();
        let s = Samples::from_values(values);
        assert!(s.min() - 1e-9 <= s.mean() && s.mean() <= s.max() + 1e-9);
    }
}

#[test]
fn event_queue_pops_sorted() {
    let mut rng = Rng::new(0xE4E);
    for _ in 0..100 {
        let n = 1 + rng.index(199);
        let times: Vec<u64> = (0..n).map(|_| rng.below(1_000_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            count += 1;
        }
        assert_eq!(count, times.len());
    }
}

#[test]
fn event_queue_backends_agree() {
    // The calendar queue must pop the exact (time, payload) sequence the
    // binary heap pops, on adversarial workloads: dense ties (many events
    // at the same instant, where insertion order decides), far-future
    // spikes that overflow the calendar "year", pushes earlier than the
    // last pop, and interleaved push/pop phases that force the bucket
    // ring through grow and shrink resizes.
    let mut meta = Rng::new(0x0DDE7);
    for case in 0..60 {
        let seed = meta.next_u64();
        let mut rng = Rng::new(seed);
        let mut heap = EventQueue::with_kind(QueueKind::BinaryHeap);
        let mut cal = EventQueue::with_kind(QueueKind::Calendar);
        let ops = 50 + rng.index(400);
        let mut next_payload = 0u64;
        for _ in 0..ops {
            if rng.bernoulli(0.6) || heap.is_empty() {
                let burst = 1 + rng.index(8);
                for _ in 0..burst {
                    let t = match rng.index(10) {
                        0 => SimTime::from_nanos(rng.below(4)), // heavy ties near zero
                        1 => SimTime::from_secs_f64(1e6),       // far-future spike
                        2 => SimTime::MAX,                      // sentinel deadline
                        _ => SimTime::from_nanos(rng.below(1_000)), // dense ties
                    };
                    heap.push(t, next_payload);
                    cal.push(t, next_payload);
                    next_payload += 1;
                }
            } else {
                let drain = 1 + rng.index(6);
                for _ in 0..drain {
                    assert_eq!(heap.pop(), cal.pop(), "case {case} (seed {seed:#x})");
                }
            }
            assert_eq!(heap.len(), cal.len());
            assert_eq!(heap.peek_time(), cal.peek_time());
        }
        loop {
            let (h, c) = (heap.pop(), cal.pop());
            assert_eq!(h, c, "case {case} (seed {seed:#x}) drain mismatch");
            if h.is_none() {
                break;
            }
        }
    }
}

#[test]
fn rng_below_is_in_range() {
    let mut meta = Rng::new(0xF00);
    for _ in 0..50 {
        let seed = meta.next_u64();
        let bound = 1 + meta.below(1_000_000);
        let mut rng = Rng::new(seed);
        for _ in 0..100 {
            assert!(rng.below(bound) < bound);
        }
    }
}

#[test]
fn zipf_pmf_normalizes() {
    let mut rng = Rng::new(0x21F);
    for _ in 0..200 {
        let n = 1 + rng.index(63);
        let s = rng.uniform(0.0, 3.0);
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}

#[test]
fn alias_table_samples_only_positive_weights() {
    let mut meta = Rng::new(0xA71A5);
    for _ in 0..50 {
        let n = 2 + meta.index(30);
        let weights: Vec<f64> = (0..n)
            .map(|_| {
                if meta.bernoulli(0.3) {
                    0.0
                } else {
                    meta.uniform(0.0, 10.0)
                }
            })
            .collect();
        if weights.iter().sum::<f64>() <= 1e-6 {
            continue;
        }
        let table = AliasTable::new(&weights);
        let mut rng = Rng::new(meta.next_u64());
        for _ in 0..200 {
            let i = table.sample(&mut rng);
            assert!(i < weights.len());
            // Zero-weight categories are never drawn.
            assert!(weights[i] > 0.0);
        }
    }
}

#[test]
fn shuffle_preserves_multiset() {
    let mut meta = Rng::new(0x5F0F);
    for _ in 0..100 {
        let n = meta.index(50);
        let mut v: Vec<u32> = (0..n).map(|_| meta.below(100) as u32).collect();
        let mut rng = Rng::new(meta.next_u64());
        let mut shuffled = v.clone();
        rng.shuffle(&mut shuffled);
        shuffled.sort_unstable();
        v.sort_unstable();
        assert_eq!(shuffled, v);
    }
}
