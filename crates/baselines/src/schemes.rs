//! Named end-to-end schemes: a policy plus graph-construction options.
//!
//! These are the systems and ablations the evaluation compares:
//! Figure 10's Baseline (DeepSpeed) / Tutel / Lina, and Figure 14's
//! incremental design points (priority, +partitioning, +pipelining,
//! fixed).

use lina_core::{CommPolicy, LinaTrainScheduler};
use lina_model::{A2aChunking, ExpertPlacement, GradCommMode, TrainStepOptions};
use lina_netsim::AllToAllAlgo;

use crate::policies::{FairSharePolicy, FixedSchedulePolicy, NaivePriorityPolicy};

/// The training systems/ablations under evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrainScheme {
    /// DeepSpeed MoE: fair-share streams, DDP bucketing, whole-tensor
    /// hierarchical all-to-all.
    Baseline,
    /// Tutel-like: adds modest all-to-all chunking with FFN overlap but
    /// keeps uncoordinated streams (performs close to Baseline, per the
    /// paper).
    Tutel,
    /// Figure 14 "fixed": allreduce between all-to-all pairs, fused
    /// tensors.
    Fixed,
    /// Figure 14 "priority": strict priority only, fused tensors.
    PriorityOnly,
    /// Figure 14 "+tensor partitioning": priority with Lina's
    /// partitioned micro-ops, no pipelining.
    PriorityPartition,
    /// Full communication scheduler (priority + partitioning +
    /// pipelining) with one expert per device (packing ablated).
    LinaNoPack,
    /// Complete Lina, with the given experts-per-device packing.
    Lina {
        /// Experts packed per device (the controller's outcome).
        experts_per_device: usize,
    },
}

impl TrainScheme {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            TrainScheme::Baseline => "baseline",
            TrainScheme::Tutel => "tutel",
            TrainScheme::Fixed => "fixed",
            TrainScheme::PriorityOnly => "priority",
            TrainScheme::PriorityPartition => "priority+partition",
            TrainScheme::LinaNoPack => "lina-nopack",
            TrainScheme::Lina { .. } => "lina",
        }
    }

    /// The scheduling policy instance for one step.
    pub fn policy(&self) -> Box<dyn CommPolicy> {
        match self {
            TrainScheme::Baseline | TrainScheme::Tutel => Box::new(FairSharePolicy),
            TrainScheme::Fixed => Box::new(FixedSchedulePolicy::default()),
            TrainScheme::PriorityOnly => Box::new(NaivePriorityPolicy),
            TrainScheme::PriorityPartition | TrainScheme::LinaNoPack | TrainScheme::Lina { .. } => {
                Box::new(LinaTrainScheduler::new())
            }
        }
    }

    /// Graph-construction options for a model with `experts` experts on
    /// a cluster topology with `devices` devices.
    ///
    /// # Panics
    ///
    /// Panics if a Lina packing degree is zero.
    pub fn step_options(&self, experts: usize, topo: &lina_netsim::Topology) -> TrainStepOptions {
        let devices = topo.devices();
        let bucketed = GradCommMode::Bucketed {
            bucket_bytes: 25.0 * 1024.0 * 1024.0,
        };
        let partitioned = GradCommMode::Partitioned { chunk_bytes: 30e6 };
        let one_per = ExpertPlacement::one_per_device(experts, devices);
        match self {
            TrainScheme::Baseline => TrainStepOptions {
                grad_comm: bucketed,
                a2a_chunking: A2aChunking::Whole,
                pipeline_ffn: false,
                placement: one_per,
                a2a_algo: AllToAllAlgo::Flat,
                jitter_sigma: 0.03,
                seed: 1,
            },
            TrainScheme::Tutel => TrainStepOptions {
                grad_comm: bucketed,
                // Tutel overlaps all-to-all with expert compute in two
                // halves.
                a2a_chunking: A2aChunking::Count(2),
                pipeline_ffn: true,
                placement: one_per,
                a2a_algo: AllToAllAlgo::Flat,
                jitter_sigma: 0.03,
                seed: 1,
            },
            TrainScheme::Fixed | TrainScheme::PriorityOnly => TrainStepOptions {
                grad_comm: bucketed,
                a2a_chunking: A2aChunking::Whole,
                pipeline_ffn: false,
                placement: one_per,
                a2a_algo: AllToAllAlgo::Flat,
                jitter_sigma: 0.03,
                seed: 1,
            },
            TrainScheme::PriorityPartition => TrainStepOptions {
                grad_comm: partitioned,
                a2a_chunking: A2aChunking::Whole,
                pipeline_ffn: false,
                placement: one_per,
                a2a_algo: AllToAllAlgo::Flat,
                jitter_sigma: 0.03,
                seed: 1,
            },
            TrainScheme::LinaNoPack => {
                TrainStepOptions::lina(ExpertPlacement::one_per_device(experts, devices))
            }
            TrainScheme::Lina { experts_per_device } => {
                assert!(*experts_per_device > 0, "Lina scheme: zero packing");
                TrainStepOptions::lina(ExpertPlacement::packed(experts, topo, *experts_per_device))
            }
        }
    }
}

/// The inference schemes of Figure 16.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InferScheme {
    /// DeepSpeed MoE: static one-expert-per-device placement.
    Baseline,
    /// Perfectly balanced gate output on the static placement (lower
    /// bound; the paper modifies the gate to emit balanced selections).
    Ideal,
    /// Full Lina: two-phase scheduling with estimation and fine-tuning.
    Lina,
    /// Lina w/o estimation: reactive scheduling from the actual routing
    /// at every layer (blocks each layer on the scheduler).
    LinaNoEstimation,
    /// Lina w/o fine-tuning: trusts the estimate blindly.
    LinaNoFinetune,
}

impl InferScheme {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            InferScheme::Baseline => "baseline",
            InferScheme::Ideal => "ideal",
            InferScheme::Lina => "lina",
            InferScheme::LinaNoEstimation => "lina w/o est",
            InferScheme::LinaNoFinetune => "lina w/o ft",
        }
    }

    /// All schemes, for sweeps.
    pub fn all() -> [InferScheme; 5] {
        [
            InferScheme::Baseline,
            InferScheme::Ideal,
            InferScheme::Lina,
            InferScheme::LinaNoEstimation,
            InferScheme::LinaNoFinetune,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lina_netsim::{ClusterSpec, Topology};

    #[test]
    fn scheme_options_are_consistent() {
        let topo = Topology::new(ClusterSpec::paper_testbed());
        for scheme in [
            TrainScheme::Baseline,
            TrainScheme::Tutel,
            TrainScheme::Fixed,
            TrainScheme::PriorityOnly,
            TrainScheme::PriorityPartition,
            TrainScheme::LinaNoPack,
            TrainScheme::Lina {
                experts_per_device: 2,
            },
        ] {
            let opts = scheme.step_options(16, &topo);
            assert!(opts.placement.is_complete(), "{}", scheme.name());
            let _ = scheme.policy();
        }
    }

    #[test]
    fn baseline_uses_buckets_lina_partitions() {
        let topo = Topology::new(ClusterSpec::paper_testbed());
        let b = TrainScheme::Baseline.step_options(16, &topo);
        assert!(matches!(b.grad_comm, GradCommMode::Bucketed { .. }));
        assert!(matches!(b.a2a_chunking, A2aChunking::Whole));
        let l = TrainScheme::Lina {
            experts_per_device: 2,
        }
        .step_options(16, &topo);
        assert!(matches!(l.grad_comm, GradCommMode::Partitioned { .. }));
        assert!(matches!(l.a2a_chunking, A2aChunking::FixedBytes(_)));
        assert!(l.pipeline_ffn);
    }

    #[test]
    fn lina_packing_replicates() {
        let topo = Topology::new(ClusterSpec::paper_testbed());
        let l = TrainScheme::Lina {
            experts_per_device: 2,
        }
        .step_options(16, &topo);
        assert_eq!(l.placement.total_replicas(), 32);
    }

    #[test]
    fn policy_names() {
        assert_eq!(TrainScheme::Baseline.policy().name(), "fair-share");
        assert_eq!(TrainScheme::PriorityOnly.policy().name(), "naive-priority");
        assert_eq!(TrainScheme::Fixed.policy().name(), "fixed");
        assert_eq!(
            TrainScheme::Lina {
                experts_per_device: 2
            }
            .policy()
            .name(),
            "lina"
        );
    }

    #[test]
    fn infer_scheme_roster() {
        let names: Vec<&str> = InferScheme::all().iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 5);
    }
}
