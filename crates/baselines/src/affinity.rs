//! Affinity-aware expert placement (ExFlow/MoETuner-style).
//!
//! [`affinity_placement`] turns measured inter-layer co-selection
//! counts ([`AffinityStats`]) into a per-layer
//! [`LayeredPlacement`]: layer 0 spreads experts round-robin, and each
//! deeper layer greedily co-locates every expert with the device that
//! already hosts the predecessors sending it the most traffic, under a
//! per-device capacity. Tokens that follow a co-located chain then
//! skip the dispatch wire entirely under the runner's locality-aware
//! all-to-all pricing, so high `map_correlation` workloads turn their
//! inter-layer all-to-alls into local handoffs.

use lina_model::{ExpertPlacement, LayeredPlacement};
use lina_netsim::DeviceId;
use lina_workload::AffinityStats;

/// Greedy graph-partition co-location of high-affinity expert chains.
///
/// Layer 0 places expert `e` on device `e % devices` (the canonical
/// round-robin spread). For every deeper layer, experts are taken in
/// descending order of incoming co-selection traffic (ties toward the
/// lower expert id) and assigned to the device whose layer-`l` experts
/// send them the most tokens, subject to `per_device` capacity; when
/// the preferred devices are full — or an expert saw no traffic — it
/// falls back to the least-loaded device (ties toward the lower id).
/// Every expert gets exactly one host per layer.
///
/// # Panics
///
/// Panics when the capacity cannot hold the experts
/// (`devices * per_device < experts`) or `layers == 0`.
pub fn affinity_placement(
    stats: &AffinityStats,
    layers: usize,
    devices: usize,
    per_device: usize,
) -> LayeredPlacement {
    let experts = stats.experts();
    assert!(layers > 0, "affinity_placement: zero layers");
    assert!(
        devices * per_device >= experts,
        "affinity_placement: {experts} experts never fit {devices} x {per_device} slots"
    );
    let round_robin = |e: usize| e % devices;
    let mut per_layer: Vec<Vec<usize>> = Vec::with_capacity(layers);
    per_layer.push((0..experts).map(round_robin).collect());
    for l in 1..layers {
        let prev = &per_layer[l - 1];
        // No measured hop (model deeper than the profiled paths):
        // repeat the previous layer's layout so chains stay co-located.
        if l > stats.hops() {
            let copy = prev.clone();
            per_layer.push(copy);
            continue;
        }
        let pairs = stats.pair_counts(l - 1);
        // Traffic each expert would receive per device if it landed
        // there: sum of co-selections from the predecessors the device
        // hosts at layer l-1.
        let mut inbound = vec![vec![0u64; devices]; experts];
        for (e, row) in pairs.iter().enumerate() {
            for (f, &c) in row.iter().enumerate() {
                inbound[f][prev[e]] += c;
            }
        }
        let mut order: Vec<usize> = (0..experts).collect();
        order.sort_by_key(|&f| (std::cmp::Reverse(inbound[f].iter().sum::<u64>()), f));
        let mut load = vec![0usize; devices];
        let mut assigned = vec![usize::MAX; experts];
        for f in order {
            let best = (0..devices)
                .filter(|&d| load[d] < per_device && inbound[f][d] > 0)
                .max_by(|&a, &b| inbound[f][a].cmp(&inbound[f][b]).then(b.cmp(&a)));
            let d = best.unwrap_or_else(|| {
                (0..devices)
                    .filter(|&d| load[d] < per_device)
                    .min_by_key(|&d| (load[d], d))
                    .expect("capacity checked above")
            });
            assigned[f] = d;
            load[d] += 1;
        }
        per_layer.push(assigned);
    }
    LayeredPlacement::from_layers(
        per_layer
            .into_iter()
            .map(|homes| {
                ExpertPlacement::uniform(
                    homes
                        .into_iter()
                        .map(|d| vec![DeviceId(d as u32)])
                        .collect(),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lina_workload::{TokenBatch, TokenPath};

    fn chain_stats(layers: usize, experts: usize, succ: &dyn Fn(u16) -> u16) -> AffinityStats {
        let tokens: Vec<TokenPath> = (0..experts as u16)
            .flat_map(|e| {
                let mut sel = vec![vec![e]];
                let mut cur = e;
                for _ in 1..layers {
                    cur = succ(cur);
                    sel.push(vec![cur]);
                }
                std::iter::repeat_n(
                    TokenPath {
                        class: e as usize,
                        selections: sel,
                    },
                    10,
                )
            })
            .collect();
        let batch = TokenBatch {
            tokens,
            devices: 1,
            experts,
        };
        AffinityStats::from_batches(std::slice::from_ref(&batch), layers, experts)
    }

    #[test]
    fn chained_experts_land_on_their_predecessor_device() {
        // Successor chain e -> (e + 4) % 8 on 4 devices, 2 per device.
        let stats = chain_stats(3, 8, &|e| (e + 4) % 8);
        let p = affinity_placement(&stats, 3, 4, 2);
        assert_eq!(p.n_layers(), 3);
        for l in 1..3 {
            for e in 0..8u16 {
                let f = (e + 4) % 8;
                assert_eq!(
                    p.layer(l - 1).hosts[e as usize][0],
                    p.layer(l).hosts[f as usize][0],
                    "expert {e} at layer {} should chain to {f}",
                    l - 1
                );
            }
        }
    }

    #[test]
    fn capacity_is_respected_and_every_expert_hosted() {
        // Everyone chains to expert 0: capacity must force spill.
        let stats = chain_stats(4, 8, &|_| 0);
        let p = affinity_placement(&stats, 4, 4, 2);
        for l in 0..4 {
            let placement = p.layer(l);
            assert!(placement.is_complete());
            assert!(placement.max_per_device(4) <= 2);
            assert_eq!(placement.total_replicas(), 8);
        }
    }

    #[test]
    fn empty_stats_fall_back_to_balanced_layout() {
        let stats = AffinityStats::new(3, 8);
        let p = affinity_placement(&stats, 3, 4, 2);
        for l in 0..3 {
            assert_eq!(p.layer(l).max_per_device(4), 2);
        }
    }

    #[test]
    fn model_deeper_than_profile_repeats_last_layout() {
        let stats = chain_stats(2, 8, &|e| (e + 1) % 8);
        let p = affinity_placement(&stats, 5, 4, 2);
        for l in 2..5 {
            assert_eq!(p.layer(l), p.layer(1));
        }
    }

    #[test]
    #[should_panic(expected = "never fit")]
    fn impossible_capacity_panics() {
        let stats = AffinityStats::new(2, 8);
        affinity_placement(&stats, 2, 2, 2);
    }
}
