//! Baseline and ablation communication policies.
//!
//! * [`FairSharePolicy`] — the DeepSpeed/Tutel behaviour: expert- and
//!   data-parallel process groups launch on independent streams with no
//!   coordination, so all-to-all and allreduce overlap and fair-share
//!   bandwidth (the Figure 5 pathology).
//! * [`NaivePriorityPolicy`] — strict priority without tensor
//!   partitioning (§4.1's strawman and Figure 14's "priority" bar):
//!   allreduce is only admitted when no all-to-all is pending or
//!   ongoing, but since gradients stay fused in large buckets, an
//!   admitted allreduce cannot be preempted when an all-to-all arrives.
//! * [`FixedSchedulePolicy`] — Figure 14's fixed heuristic: allreduce
//!   may only launch between *pairs* of backward all-to-all operations
//!   (i.e. at MoE-layer boundaries), with default tensor fusion.

use lina_core::{CommPolicy, CommView};
use lina_model::{CommClass, CommMeta};

/// Uncoordinated streams: launch anything whose class stream is free.
#[derive(Clone, Debug, Default)]
pub struct FairSharePolicy;

impl CommPolicy for FairSharePolicy {
    fn name(&self) -> &'static str {
        "fair-share"
    }

    fn select(&mut self, view: &CommView<'_>) -> Vec<usize> {
        let mut launch = Vec::new();
        if view.a2a_stream_free {
            if let Some(p) = view.pending_of(CommClass::AllToAll).next() {
                launch.push(p.handle);
            }
        }
        if view.allreduce_stream_free {
            if let Some(p) = view.pending_of(CommClass::Allreduce).next() {
                launch.push(p.handle);
            }
        }
        for p in view.pending_of(CommClass::Control) {
            launch.push(p.handle);
        }
        launch
    }
}

/// Strict priority without partitioning.
#[derive(Clone, Debug, Default)]
pub struct NaivePriorityPolicy;

impl CommPolicy for NaivePriorityPolicy {
    fn name(&self) -> &'static str {
        "naive-priority"
    }

    fn select(&mut self, view: &CommView<'_>) -> Vec<usize> {
        let mut launch = Vec::new();
        if view.a2a_stream_free {
            if let Some(p) = view.pending_of(CommClass::AllToAll).next() {
                launch.push(p.handle);
            }
        }
        if view.allreduce_stream_free && !view.a2a_present() {
            if let Some(p) = view.pending_of(CommClass::Allreduce).next() {
                launch.push(p.handle);
            }
        }
        for p in view.pending_of(CommClass::Control) {
            launch.push(p.handle);
        }
        launch
    }
}

/// Fixed heuristic: allreduce between pairs of backward all-to-alls.
#[derive(Clone, Debug, Default)]
pub struct FixedSchedulePolicy {
    backward_a2a_done: usize,
}

impl CommPolicy for FixedSchedulePolicy {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn select(&mut self, view: &CommView<'_>) -> Vec<usize> {
        let mut launch = Vec::new();
        if view.a2a_stream_free {
            if let Some(p) = view.pending_of(CommClass::AllToAll).next() {
                launch.push(p.handle);
            }
        }
        // Allreduce only at an MoE-layer boundary in the backward pass
        // (an even number of backward all-to-alls completed) and only
        // while no all-to-all is running.
        let at_boundary = self.backward_a2a_done > 0 && self.backward_a2a_done.is_multiple_of(2);
        if view.allreduce_stream_free && at_boundary && !view.a2a_present() {
            if let Some(p) = view.pending_of(CommClass::Allreduce).next() {
                launch.push(p.handle);
            }
        }
        for p in view.pending_of(CommClass::Control) {
            launch.push(p.handle);
        }
        launch
    }

    fn on_complete(&mut self, meta: &CommMeta) {
        if meta.class == CommClass::AllToAll && meta.backward {
            self.backward_a2a_done += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lina_core::{ActiveComm, PendingComm};

    fn meta(class: CommClass, backward: bool) -> CommMeta {
        CommMeta {
            class,
            layer: 1,
            chunk: 0,
            nchunks: 1,
            bytes_per_device: 1.0,
            backward,
            op_index: 0,
        }
    }

    fn pend(handle: usize, class: CommClass) -> PendingComm {
        PendingComm {
            handle,
            meta: meta(class, true),
            ready_at_ns: handle as u64,
        }
    }

    fn view<'a>(
        pending: &'a [PendingComm],
        active: &'a [ActiveComm],
        a2a_free: bool,
        ar_free: bool,
    ) -> CommView<'a> {
        CommView {
            pending,
            active,
            a2a_imminent: false,
            a2a_stream_free: a2a_free,
            allreduce_stream_free: ar_free,
        }
    }

    #[test]
    fn fair_share_launches_both() {
        let pending = [pend(0, CommClass::AllToAll), pend(1, CommClass::Allreduce)];
        let mut p = FairSharePolicy;
        let got = p.select(&view(&pending, &[], true, true));
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn fair_share_respects_busy_streams() {
        let pending = [pend(0, CommClass::AllToAll), pend(1, CommClass::Allreduce)];
        let active = [ActiveComm {
            meta: meta(CommClass::AllToAll, true),
        }];
        let mut p = FairSharePolicy;
        let got = p.select(&view(&pending, &active, false, true));
        assert_eq!(got, vec![1]);
    }

    #[test]
    fn naive_priority_defers_allreduce() {
        let pending = [pend(0, CommClass::AllToAll), pend(1, CommClass::Allreduce)];
        let mut p = NaivePriorityPolicy;
        let got = p.select(&view(&pending, &[], true, true));
        assert_eq!(got, vec![0]);
        // Once the all-to-all is gone, allreduce launches.
        let only_ar = [pend(1, CommClass::Allreduce)];
        let got = p.select(&view(&only_ar, &[], true, true));
        assert_eq!(got, vec![1]);
    }

    #[test]
    fn fixed_waits_for_layer_boundary() {
        let pending = [pend(0, CommClass::Allreduce)];
        let mut p = FixedSchedulePolicy::default();
        assert!(p.select(&view(&pending, &[], true, true)).is_empty());
        p.on_complete(&meta(CommClass::AllToAll, true));
        assert!(p.select(&view(&pending, &[], true, true)).is_empty());
        p.on_complete(&meta(CommClass::AllToAll, true));
        assert_eq!(p.select(&view(&pending, &[], true, true)), vec![0]);
        // Forward all-to-alls do not count.
        let mut q = FixedSchedulePolicy::default();
        q.on_complete(&meta(CommClass::AllToAll, false));
        q.on_complete(&meta(CommClass::AllToAll, false));
        assert!(q.select(&view(&pending, &[], true, true)).is_empty());
    }
}
