//! # lina-baselines
//!
//! The comparison systems and ablations of the evaluation: the
//! DeepSpeed-like fair-share baseline, a Tutel-like variant, the fixed
//! and naive-priority strawmen of §4.1/Figure 14, and the named scheme
//! roster (training and inference) the benchmark harness sweeps.

#![warn(missing_docs)]

pub mod affinity;
pub mod policies;
pub mod schemes;

pub use affinity::affinity_placement;
pub use policies::{FairSharePolicy, FixedSchedulePolicy, NaivePriorityPolicy};
pub use schemes::{InferScheme, TrainScheme};
