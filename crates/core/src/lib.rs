//! # lina-core
//!
//! The paper's primary contribution, faithfully reimplemented:
//!
//! * **Training** (§4): a priority-based micro-op communication
//!   scheduler that guarantees all-to-all full bandwidth (allreduce
//!   micro-ops run only in the gaps), plus the expert-packing
//!   controller that grows packing until expert-FFN micro-ops match
//!   all-to-all micro-ops for pipelining.
//! * **Inference** (§5): sample-path popularity estimation from the
//!   cross-layer expert-selection pattern, Eq. (1) device allocation
//!   with first-fit-decreasing packing and replication, and the
//!   two-phase (estimate, then fine-tune on deviation) protocol.
//!
//! The [`policy::CommPolicy`] trait is the narrow interface through
//! which any scheduler — Lina's or a baseline's — controls the
//! execution engine.

#![warn(missing_docs)]

pub mod inference;
pub mod policy;
pub mod training;

pub use inference::{
    popularity_placement, top_indices, PhaseOne, PhaseTwo, PlacementConfig, PopularityEstimator,
    TwoPhaseConfig, TwoPhaseScheduler,
};
pub use policy::{ActiveComm, CommPolicy, CommView, PendingComm};
pub use training::{
    LinaTrainScheduler, PackingController, PackingDecision, PackingObservation, PackingPlan,
};
