//! Lina's training-side contribution: the priority micro-op
//! communication scheduler and the expert-packing controller.

pub mod packing;
pub mod scheduler;

pub use packing::{PackingController, PackingDecision, PackingObservation, PackingPlan};
pub use scheduler::LinaTrainScheduler;
