//! Lina's priority-based micro-op communication scheduler (§4.2, §6.1).
//!
//! The rules, verbatim from the paper:
//!
//! * all-to-all is launched as soon as it is ready (it blocks the
//!   compute stream, so every nanosecond counts);
//! * an allreduce micro-op is admitted only when **no all-to-all is
//!   waiting or ongoing**, so all-to-all always gets the full network
//!   bandwidth during its lifetime;
//! * the scheduler additionally **stops admitting allreduce micro-ops
//!   once an all-to-all is imminent** (the combine computation of the
//!   next MoE layer's backward has started), because a micro-op
//!   launched now would collide with it — this is the "combining
//!   computation implies all-to-all is imminent" rule of §6.1.
//!
//! Because tensors are partitioned into equal micro-ops at graph
//! construction, deferring allreduce never wastes much work: micro-ops
//! slot into the gaps between all-to-all operations (Figure 8a).

use lina_model::CommClass;

use crate::policy::{CommPolicy, CommView};

/// Lina's training-time communication scheduler.
#[derive(Clone, Debug, Default)]
pub struct LinaTrainScheduler {
    /// When false, the imminence rule is disabled (ablation).
    pub use_imminence: bool,
}

impl LinaTrainScheduler {
    /// Creates the full scheduler (imminence rule enabled).
    pub fn new() -> Self {
        LinaTrainScheduler {
            use_imminence: true,
        }
    }
}

impl CommPolicy for LinaTrainScheduler {
    fn name(&self) -> &'static str {
        "lina"
    }

    fn select(&mut self, view: &CommView<'_>) -> Vec<usize> {
        let mut launch = Vec::new();
        // All-to-all: admit the head of the queue whenever the stream
        // is free.
        if view.a2a_stream_free {
            if let Some(p) = view.pending_of(CommClass::AllToAll).next() {
                launch.push(p.handle);
            }
        }
        // Allreduce: one micro-op, only when no all-to-all exists or
        // looms.
        let a2a_soon = view.a2a_present() || (self.use_imminence && view.a2a_imminent);
        if view.allreduce_stream_free && !a2a_soon {
            if let Some(p) = view.pending_of(CommClass::Allreduce).next() {
                launch.push(p.handle);
            }
        }
        // Control traffic is never deferred.
        for p in view.pending_of(CommClass::Control) {
            launch.push(p.handle);
        }
        launch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ActiveComm, PendingComm};
    use lina_model::CommMeta;

    fn meta(class: CommClass, chunk: usize) -> CommMeta {
        CommMeta {
            class,
            layer: 3,
            chunk,
            nchunks: 4,
            bytes_per_device: 1e6,
            backward: true,
            op_index: 0,
        }
    }

    fn pend(handle: usize, class: CommClass) -> PendingComm {
        PendingComm {
            handle,
            meta: meta(class, handle % 4),
            ready_at_ns: handle as u64,
        }
    }

    #[test]
    fn a2a_launches_immediately() {
        let mut s = LinaTrainScheduler::new();
        let pending = vec![pend(0, CommClass::AllToAll)];
        let view = CommView {
            pending: &pending,
            active: &[],
            a2a_imminent: false,
            a2a_stream_free: true,
            allreduce_stream_free: true,
        };
        assert_eq!(s.select(&view), vec![0]);
    }

    #[test]
    fn allreduce_deferred_while_a2a_pending() {
        let mut s = LinaTrainScheduler::new();
        let pending = vec![pend(0, CommClass::Allreduce), pend(1, CommClass::AllToAll)];
        let view = CommView {
            pending: &pending,
            active: &[],
            a2a_imminent: false,
            a2a_stream_free: true,
            allreduce_stream_free: true,
        };
        // Only the all-to-all is admitted.
        assert_eq!(s.select(&view), vec![1]);
    }

    #[test]
    fn allreduce_deferred_while_a2a_active() {
        let mut s = LinaTrainScheduler::new();
        let pending = vec![pend(0, CommClass::Allreduce)];
        let active = vec![ActiveComm {
            meta: meta(CommClass::AllToAll, 0),
        }];
        let view = CommView {
            pending: &pending,
            active: &active,
            a2a_imminent: false,
            a2a_stream_free: false,
            allreduce_stream_free: true,
        };
        assert!(s.select(&view).is_empty());
    }

    #[test]
    fn allreduce_deferred_when_a2a_imminent() {
        let mut s = LinaTrainScheduler::new();
        let pending = vec![pend(0, CommClass::Allreduce)];
        let view = CommView {
            pending: &pending,
            active: &[],
            a2a_imminent: true,
            a2a_stream_free: true,
            allreduce_stream_free: true,
        };
        assert!(s.select(&view).is_empty());
        // Ablated scheduler ignores imminence.
        let mut ablated = LinaTrainScheduler {
            use_imminence: false,
        };
        assert_eq!(ablated.select(&view), vec![0]);
    }

    #[test]
    fn allreduce_runs_in_gaps() {
        let mut s = LinaTrainScheduler::new();
        let pending = vec![pend(0, CommClass::Allreduce), pend(1, CommClass::Allreduce)];
        let view = CommView {
            pending: &pending,
            active: &[],
            a2a_imminent: false,
            a2a_stream_free: true,
            allreduce_stream_free: true,
        };
        // Exactly one micro-op at a time.
        assert_eq!(s.select(&view), vec![0]);
    }

    #[test]
    fn one_allreduce_in_flight_blocks_more() {
        let mut s = LinaTrainScheduler::new();
        let pending = vec![pend(1, CommClass::Allreduce)];
        let active = vec![ActiveComm {
            meta: meta(CommClass::Allreduce, 0),
        }];
        let view = CommView {
            pending: &pending,
            active: &active,
            a2a_imminent: false,
            a2a_stream_free: true,
            allreduce_stream_free: false,
        };
        assert!(s.select(&view).is_empty());
    }
}
