//! Lina's expert-packing controller (§4.2, §6.1).
//!
//! Pipelining is only efficient when an expert-FFN micro-op takes about
//! as long as its all-to-all micro-op; with one expert per device the
//! FFN is far shorter. The controller starts at one expert per device
//! and doubles the packing while the measured FFN micro-op time stays
//! below the all-to-all micro-op time, stopping at the expert count and
//! falling back to DRAM-offloading when the packed weights exceed GPU
//! memory.

use lina_model::{CostModel, ExpertPlacement};
use lina_netsim::Topology;
use lina_simcore::SimDuration;

/// One measurement window's observations (the controller samples the
/// completion times of FFN and all-to-all micro-ops in the forward
/// pass).
#[derive(Clone, Copy, Debug)]
pub struct PackingObservation {
    /// Mean expert-FFN micro-op completion time.
    pub ffn_micro: SimDuration,
    /// Mean all-to-all micro-op completion time.
    pub a2a_micro: SimDuration,
}

/// The controller's decision after a measurement window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PackingDecision {
    /// Keep the current packing.
    Keep,
    /// Double the number of experts per device.
    Grow,
}

/// Outcome of a full packing search.
#[derive(Clone, Debug)]
pub struct PackingPlan {
    /// Experts hosted per device.
    pub experts_per_device: usize,
    /// The resulting placement.
    pub placement: ExpertPlacement,
    /// True if packed expert weights exceed device memory and
    /// DRAM-offloading is required.
    pub dram_offloading: bool,
}

/// The expert-packing controller.
#[derive(Clone, Debug)]
pub struct PackingController {
    experts: usize,
    experts_per_device: usize,
}

impl PackingController {
    /// Starts at one expert per device.
    ///
    /// # Panics
    ///
    /// Panics if `experts` is zero.
    pub fn new(experts: usize) -> Self {
        assert!(experts > 0, "PackingController::new: zero experts");
        PackingController {
            experts,
            experts_per_device: 1,
        }
    }

    /// Current packing degree.
    pub fn experts_per_device(&self) -> usize {
        self.experts_per_device
    }

    /// Applies the paper's rule to one observation: grow while the FFN
    /// micro-op is shorter than the all-to-all micro-op and more
    /// packing is possible.
    pub fn decide(&mut self, obs: PackingObservation) -> PackingDecision {
        if obs.ffn_micro < obs.a2a_micro && self.experts_per_device < self.experts {
            self.experts_per_device = (self.experts_per_device * 2).min(self.experts);
            PackingDecision::Grow
        } else {
            PackingDecision::Keep
        }
    }

    /// Builds the placement for the current packing degree and checks
    /// device memory (model weights resident per device: non-expert
    /// replica plus `experts_per_device` experts per layer, doubled for
    /// gradients and optimizer state).
    pub fn plan(&self, cost: &CostModel, topo: &Topology) -> PackingPlan {
        let placement = ExpertPlacement::packed(self.experts, topo, self.experts_per_device);
        let model = &cost.model;
        let resident = (model.non_expert_params()
            + model.layers * model.expert_params() * self.experts_per_device)
            as f64
            * model.dtype_bytes as f64;
        // Parameters + gradients + optimizer state + activation head
        // room; 3x is the usual fp16-training floor.
        let needed = 3.0 * resident;
        let dram_offloading = needed > topo.spec().device_memory;
        PackingPlan {
            experts_per_device: self.experts_per_device,
            placement,
            dram_offloading,
        }
    }

    /// Runs the full iterative search offline given a measurement
    /// function (our reproduction of the 10-step warm-up + adjust-every-
    /// four-steps loop): `measure(experts_per_device)` returns the
    /// micro-op observation under that packing.
    pub fn search(
        &mut self,
        cost: &CostModel,
        topo: &Topology,
        mut measure: impl FnMut(usize) -> PackingObservation,
    ) -> PackingPlan {
        loop {
            let obs = measure(self.experts_per_device);
            if self.decide(obs) == PackingDecision::Keep {
                return self.plan(cost, topo);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lina_model::{DeviceSpec, MoeModelConfig};
    use lina_netsim::ClusterSpec;

    fn ms(v: f64) -> SimDuration {
        SimDuration::from_secs_f64(v / 1e3)
    }

    #[test]
    fn grows_while_ffn_shorter() {
        let mut c = PackingController::new(16);
        assert_eq!(
            c.decide(PackingObservation {
                ffn_micro: ms(0.5),
                a2a_micro: ms(2.0)
            }),
            PackingDecision::Grow
        );
        assert_eq!(c.experts_per_device(), 2);
        assert_eq!(
            c.decide(PackingObservation {
                ffn_micro: ms(1.0),
                a2a_micro: ms(2.0)
            }),
            PackingDecision::Grow
        );
        assert_eq!(c.experts_per_device(), 4);
        assert_eq!(
            c.decide(PackingObservation {
                ffn_micro: ms(2.5),
                a2a_micro: ms(2.0)
            }),
            PackingDecision::Keep
        );
        assert_eq!(c.experts_per_device(), 4);
    }

    #[test]
    fn never_exceeds_expert_count() {
        let mut c = PackingController::new(2);
        c.decide(PackingObservation {
            ffn_micro: ms(0.1),
            a2a_micro: ms(10.0),
        });
        assert_eq!(c.experts_per_device(), 2);
        assert_eq!(
            c.decide(PackingObservation {
                ffn_micro: ms(0.1),
                a2a_micro: ms(10.0)
            }),
            PackingDecision::Keep
        );
    }

    #[test]
    fn search_converges_with_doubling_ffn_cost() {
        // FFN micro-op time doubles with packing; crosses a2a at 4.
        let cost = CostModel::new(DeviceSpec::a100(), MoeModelConfig::transformer_xl(12, 16));
        let topo = Topology::new(ClusterSpec::paper_testbed());
        let mut c = PackingController::new(16);
        let plan = c.search(&cost, &topo, |epd| PackingObservation {
            ffn_micro: ms(0.6 * epd as f64),
            a2a_micro: ms(2.0),
        });
        assert_eq!(plan.experts_per_device, 4);
        assert!(plan.placement.is_complete());
    }

    #[test]
    fn memory_check_flags_offloading() {
        let cost = CostModel::new(DeviceSpec::a100(), MoeModelConfig::transformer_xl(36, 16));
        let topo = Topology::new(ClusterSpec::paper_testbed());
        let mut tight = PackingController::new(16);
        tight.experts_per_device = 16;
        let plan_full = tight.plan(&cost, &topo);
        let light = PackingController::new(16);
        let plan_one = light.plan(&cost, &topo);
        // Hosting all 16 experts of a 36-layer model needs more memory
        // than hosting one.
        assert!(!plan_one.dram_offloading);
        assert!(
            plan_full.experts_per_device == 16
                && (plan_full.dram_offloading || !plan_one.dram_offloading)
        );
    }
}
