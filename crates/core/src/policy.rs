//! The communication-scheduling policy interface.
//!
//! The execution engine maintains NCCL-like stream semantics: at most
//! one collective of each class (all-to-all / allreduce) is in flight,
//! and a launched collective cannot be preempted — precisely the
//! constraint §4.1 identifies. A policy is consulted whenever a stream
//! could launch something (an op became ready, or a collective
//! finished) and picks which pending op, if any, to admit.
//!
//! This narrow interface is deliberately all the control a real
//! scheduler has; every scheme in the paper (baseline fair-share, naive
//! priority, fixed, and Lina's micro-op priority scheduler) is a policy
//! plus a choice of graph-construction options.

use lina_model::CommMeta;

/// A communication op whose dependencies are met, awaiting launch.
#[derive(Clone, Copy, Debug)]
pub struct PendingComm {
    /// Engine handle; return this from [`CommPolicy::select`] to launch.
    pub handle: usize,
    /// The op's metadata.
    pub meta: CommMeta,
    /// Instant the op became ready, in nanoseconds (FIFO tie-breaking).
    pub ready_at_ns: u64,
}

/// A collective currently in flight.
#[derive(Clone, Copy, Debug)]
pub struct ActiveComm {
    /// The op's metadata.
    pub meta: CommMeta,
}

/// Snapshot of the communication state at a decision point.
#[derive(Clone, Debug)]
pub struct CommView<'a> {
    /// Ready-to-launch ops, in readiness order.
    pub pending: &'a [PendingComm],
    /// Collectives in flight.
    pub active: &'a [ActiveComm],
    /// True if some all-to-all op is *about to* become ready: all of
    /// its unmet dependencies are currently executing. Lina's scheduler
    /// uses this as the "combine in backward has started" signal
    /// (§6.1) to stop admitting allreduce micro-ops.
    pub a2a_imminent: bool,
    /// True if an all-to-all class stream is free (no all-to-all in
    /// flight).
    pub a2a_stream_free: bool,
    /// True if the allreduce class stream is free.
    pub allreduce_stream_free: bool,
}

impl CommView<'_> {
    /// Pending ops of a class, in readiness order.
    pub fn pending_of(
        &self,
        class: lina_model::CommClass,
    ) -> impl Iterator<Item = &PendingComm> + '_ {
        self.pending.iter().filter(move |p| p.meta.class == class)
    }

    /// True if any all-to-all is pending or in flight.
    pub fn a2a_present(&self) -> bool {
        use lina_model::CommClass::AllToAll;
        self.pending.iter().any(|p| p.meta.class == AllToAll)
            || self.active.iter().any(|a| a.meta.class == AllToAll)
    }
}

/// A communication scheduling policy.
pub trait CommPolicy {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Chooses which pending ops to launch now (handles from
    /// [`PendingComm::handle`]). The engine launches them in the
    /// returned order, still subject to one-in-flight-per-class; ops
    /// that cannot launch are silently skipped and the policy will be
    /// consulted again at the next event.
    fn select(&mut self, view: &CommView<'_>) -> Vec<usize>;

    /// Notification that a collective completed (for policies keeping
    /// internal state, e.g. fixed scheduling counting all-to-alls).
    fn on_complete(&mut self, _meta: &CommMeta) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use lina_model::{CommClass, CommMeta};

    fn meta(class: CommClass) -> CommMeta {
        CommMeta {
            class,
            layer: 0,
            chunk: 0,
            nchunks: 1,
            bytes_per_device: 1.0,
            backward: true,
            op_index: 0,
        }
    }

    #[test]
    fn view_helpers() {
        let pending = vec![
            PendingComm {
                handle: 0,
                meta: meta(CommClass::AllToAll),
                ready_at_ns: 0,
            },
            PendingComm {
                handle: 1,
                meta: meta(CommClass::Allreduce),
                ready_at_ns: 1,
            },
        ];
        let active = vec![ActiveComm {
            meta: meta(CommClass::Allreduce),
        }];
        let view = CommView {
            pending: &pending,
            active: &active,
            a2a_imminent: false,
            a2a_stream_free: true,
            allreduce_stream_free: false,
        };
        assert!(view.a2a_present());
        assert_eq!(view.pending_of(CommClass::AllToAll).count(), 1);
        assert_eq!(view.pending_of(CommClass::Allreduce).count(), 1);
    }

    #[test]
    fn a2a_present_via_active() {
        let active = vec![ActiveComm {
            meta: meta(CommClass::AllToAll),
        }];
        let view = CommView {
            pending: &[],
            active: &active,
            a2a_imminent: false,
            a2a_stream_free: false,
            allreduce_stream_free: true,
        };
        assert!(view.a2a_present());
    }
}
