//! Lina's inference-side contribution: popularity estimation from
//! token-level selection patterns, Eq. (1) placement with first-fit-
//! decreasing packing, and the two-phase scheduling protocol.

pub mod estimator;
pub mod placement;
pub mod twophase;

pub use estimator::{top_indices, PopularityEstimator};
pub use placement::{popularity_placement, PlacementConfig};
pub use twophase::{PhaseOne, PhaseTwo, TwoPhaseConfig, TwoPhaseScheduler};
