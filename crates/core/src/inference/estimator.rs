//! Expert-popularity estimation from token-level selection patterns (§5.2).
//!
//! In a profiling stage (run on training-distribution data once the
//! load-balancing loss has stabilized), Lina groups tokens by the
//! sample path of experts they traversed over the last `l` layers and
//! records, for each path, the empirical distribution `Ψ_j^{i+1}` of the
//! next layer's selection. At inference, each token's observed path is
//! looked up; its top-k next-layer experts and their probabilities feed
//! Eq. (1) to estimate per-expert device demand before the gate runs.

use std::collections::BTreeMap;

use lina_workload::{TokenBatch, TokenPath};

/// Profiled `Ψ` tables and lookup logic.
#[derive(Clone, Debug)]
pub struct PopularityEstimator {
    /// Sample-path length `l`.
    path_length: usize,
    experts: usize,
    layers: usize,
    /// `tables[len-1][i]` maps a path of primary experts for layers
    /// `i-len+1 ..= i` to the selection distribution at layer `i+1`.
    /// Lengths 1..=l are all profiled so lookups can back off from the
    /// full path to shorter suffixes when a path was never observed.
    tables: Vec<Vec<BTreeMap<Vec<u16>, Vec<f64>>>>,
    /// Fallback per-layer marginal distribution for unseen paths.
    marginals: Vec<Vec<f64>>,
}

impl PopularityEstimator {
    /// Profiles the estimator from training-distribution batches.
    ///
    /// # Panics
    ///
    /// Panics if `path_length` is zero, no batches are given, or the
    /// batches are empty.
    pub fn profile(batches: &[TokenBatch], path_length: usize) -> Self {
        assert!(path_length > 0, "profile: zero path length");
        assert!(!batches.is_empty(), "profile: no batches");
        let experts = batches[0].experts;
        let layers = batches[0].tokens[0].selections.len();
        let mut counts: Vec<Vec<BTreeMap<Vec<u16>, Vec<f64>>>> = (0..path_length)
            .map(|_| {
                (0..layers.saturating_sub(1))
                    .map(|_| BTreeMap::new())
                    .collect()
            })
            .collect();
        let mut marginal_counts = vec![vec![0.0f64; experts]; layers];
        for batch in batches {
            for tok in &batch.tokens {
                for layer in 0..layers {
                    marginal_counts[layer][tok.primary(layer) as usize] += 1.0;
                    if layer + 1 < layers {
                        for len in 1..=path_length {
                            let key = tok.path_suffix(layer, len);
                            let dist = counts[len - 1][layer]
                                .entry(key)
                                .or_insert_with(|| vec![0.0; experts]);
                            dist[tok.primary(layer + 1) as usize] += 1.0;
                        }
                    }
                }
            }
        }
        let tables = counts
            .into_iter()
            .map(|per_layer| {
                per_layer
                    .into_iter()
                    .map(|m| {
                        m.into_iter()
                            .map(|(k, mut dist)| {
                                let total: f64 = dist.iter().sum();
                                if total > 0.0 {
                                    for v in &mut dist {
                                        *v /= total;
                                    }
                                }
                                (k, dist)
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let marginals = marginal_counts
            .into_iter()
            .map(|mut dist| {
                let total: f64 = dist.iter().sum();
                if total > 0.0 {
                    for v in &mut dist {
                        *v /= total;
                    }
                }
                dist
            })
            .collect();
        PopularityEstimator {
            path_length,
            experts,
            layers,
            tables,
            marginals,
        }
    }

    /// The profiled path length `l`.
    pub fn path_length(&self) -> usize {
        self.path_length
    }

    /// Experts per layer.
    pub fn experts(&self) -> usize {
        self.experts
    }

    /// Layers profiled.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Number of distinct full-length profiled paths ending at `layer`.
    pub fn paths_at(&self, layer: usize) -> usize {
        self.tables[self.path_length - 1]
            .get(layer)
            .map_or(0, BTreeMap::len)
    }

    /// `Ψ_j^{layer+1}` for the token's observed path up to `layer`.
    /// Unseen full-length paths back off to progressively shorter
    /// suffixes, and finally to the layer marginal.
    pub fn next_layer_distribution(&self, token: &TokenPath, layer: usize) -> &[f64] {
        for len in (1..=self.path_length).rev() {
            let key = token.path_suffix(layer, len);
            if let Some(dist) = self.tables[len - 1].get(layer).and_then(|t| t.get(&key)) {
                return dist;
            }
        }
        &self.marginals[(layer + 1).min(self.layers - 1)]
    }

    /// Eq. (1)'s aggregate: estimated popularity of each expert at
    /// `layer + 1`, averaging each token's top-k probabilities from its
    /// `Ψ` distribution. The result is an (unnormalized, <= 1 per
    /// entry) fraction-of-demand vector.
    pub fn estimate_popularity(
        &self,
        tokens: &[TokenPath],
        layer: usize,
        top_k: usize,
    ) -> Vec<f64> {
        let mut agg = vec![0.0f64; self.experts];
        if tokens.is_empty() {
            return agg;
        }
        for tok in tokens {
            let dist = self.next_layer_distribution(tok, layer);
            for &e in top_indices(dist, top_k).iter() {
                agg[e] += dist[e];
            }
        }
        for v in &mut agg {
            *v /= tokens.len() as f64;
        }
        agg
    }

    /// True if the estimate's top-`2k` experts match the actual
    /// popularity's top-`2k` (the paper's phase-two deviation check and
    /// its accuracy definition).
    pub fn estimate_matches(estimated: &[f64], actual: &[f64], two_k: usize) -> bool {
        Self::deviates_too_far(estimated, actual, two_k, 0.0).is_none()
    }

    /// The paper's phase-two check asks whether the actual selection
    /// "deviates too far" from the estimate: a top-`2k` set mismatch
    /// only matters when a missed expert is *meaningfully* more popular
    /// than a kept one — the paper itself observes that estimation
    /// errors usually swap experts of similar popularity, which leaves
    /// the packing decision intact. Returns the worst relative excess
    /// when the deviation exceeds `tolerance`, else `None`.
    pub fn deviates_too_far(
        estimated: &[f64],
        actual: &[f64],
        two_k: usize,
        tolerance: f64,
    ) -> Option<f64> {
        let est_top = top_indices(estimated, two_k);
        let act_top = top_indices(actual, two_k);
        let missed: Vec<usize> = act_top
            .iter()
            .copied()
            .filter(|e| !est_top.contains(e))
            .collect();
        if missed.is_empty() {
            return None;
        }
        // The least actually-popular expert we kept in the estimate's
        // top set.
        let kept_min = est_top
            .iter()
            .map(|&e| actual[e])
            .fold(f64::INFINITY, f64::min)
            .max(1e-12);
        let worst_missed = missed.iter().map(|&e| actual[e]).fold(0.0, f64::max);
        let excess = worst_missed / kept_min - 1.0;
        if excess > tolerance {
            Some(excess)
        } else {
            None
        }
    }
}

/// Indices of the `k` largest entries (ties broken by lower index),
/// ordered by descending value.
pub fn top_indices(values: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[b]
            .partial_cmp(&values[a])
            .expect("finite popularity")
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use lina_workload::{Mode, TokenSource, WorkloadSpec};

    fn profiled(l: usize) -> (PopularityEstimator, TokenSource) {
        let spec = WorkloadSpec::enwik8(16, 12);
        let mut src = TokenSource::new(&spec, 1, 7);
        let batches: Vec<TokenBatch> = (0..8)
            .map(|_| src.sample_batch(16, 512, Mode::Train))
            .collect();
        (PopularityEstimator::profile(&batches, l), src)
    }

    #[test]
    fn top_indices_basics() {
        assert_eq!(top_indices(&[0.1, 0.5, 0.3], 2), vec![1, 2]);
        assert_eq!(top_indices(&[0.5, 0.5], 1), vec![0]);
        assert_eq!(top_indices(&[1.0], 5), vec![0]);
    }

    #[test]
    fn distributions_are_normalized() {
        let (est, _) = profiled(3);
        for per_layer in &est.tables {
            for layer_tables in per_layer {
                for dist in layer_tables.values() {
                    let total: f64 = dist.iter().sum();
                    assert!((total - 1.0).abs() < 1e-9, "sum {total}");
                }
            }
        }
        for m in &est.marginals {
            let total: f64 = m.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn longer_paths_give_more_tables() {
        let (e1, _) = profiled(1);
        let (e3, _) = profiled(3);
        assert!(
            e3.paths_at(6) > e1.paths_at(6),
            "l=3 should distinguish more paths"
        );
        // l=1 at layer 6 has at most `experts` paths.
        assert!(e1.paths_at(6) <= 16);
    }

    #[test]
    fn estimate_tracks_actual_popularity() {
        let (est, mut src) = profiled(3);
        let batch = src.sample_batch(16, 512, Mode::Inference);
        let layer = 6;
        let estimated = est.estimate_popularity(&batch.tokens, layer, 1);
        let actual = lina_workload::popularity(&batch, layer + 1);
        // Rank correlation proxy: the estimated top-4 should share most
        // members with the actual top-4.
        let est_top = top_indices(&estimated, 4);
        let act_top = top_indices(&actual, 4);
        let overlap = est_top.iter().filter(|e| act_top.contains(e)).count();
        assert!(
            overlap >= 2,
            "top-4 overlap only {overlap} (est {est_top:?}, act {act_top:?})"
        );
    }

    #[test]
    fn accuracy_improves_with_path_length() {
        let spec = WorkloadSpec::enwik8(16, 12);
        let mut accuracies = Vec::new();
        for l in [1usize, 3, 6] {
            let mut src = TokenSource::new(&spec, 1, 7);
            let batches: Vec<TokenBatch> = (0..12)
                .map(|_| src.sample_batch(16, 1024, Mode::Train))
                .collect();
            let est = PopularityEstimator::profile(&batches, l);
            let mut hits = 0;
            let mut total = 0;
            let mut infer = TokenSource::new(&spec, 1, 99);
            for _ in 0..24 {
                let batch = infer.sample_batch(16, 512, Mode::Inference);
                for layer in 3..11 {
                    let estimated = est.estimate_popularity(&batch.tokens, layer, 1);
                    let actual = lina_workload::popularity(&batch, layer + 1);
                    if PopularityEstimator::estimate_matches(&estimated, &actual, 2) {
                        hits += 1;
                    }
                    total += 1;
                }
            }
            accuracies.push(hits as f64 / total as f64);
        }
        assert!(
            accuracies[1] > accuracies[0],
            "l=3 accuracy {} not above l=1 {}",
            accuracies[1],
            accuracies[0]
        );
        assert!(
            accuracies[2] >= accuracies[1] * 0.9,
            "l=6 accuracy {} collapsed vs l=3 {}",
            accuracies[2],
            accuracies[1]
        );
    }

    #[test]
    fn deviation_tolerance_forgives_near_ties() {
        let est = [0.30, 0.28, 0.22, 0.20];
        // Actual swaps the #2 and #3 experts, but their popularity is
        // close: no significant deviation.
        let act = [0.30, 0.24, 0.26, 0.20];
        assert!(!PopularityEstimator::estimate_matches(&est, &act, 2));
        assert!(PopularityEstimator::deviates_too_far(&est, &act, 2, 0.25).is_none());
        // A genuinely hot missed expert is flagged.
        let act_hot = [0.30, 0.10, 0.50, 0.10];
        let excess = PopularityEstimator::deviates_too_far(&est, &act_hot, 2, 0.25);
        assert!(excess.is_some());
        assert!(excess.expect("deviates") > 0.25);
    }

    #[test]
    fn zero_tolerance_equals_strict_matching() {
        let est = [0.4, 0.3, 0.2, 0.1];
        let act = [0.1, 0.2, 0.3, 0.4];
        assert_eq!(
            PopularityEstimator::estimate_matches(&est, &act, 2),
            PopularityEstimator::deviates_too_far(&est, &act, 2, 0.0).is_none()
        );
    }

    #[test]
    fn estimate_matches_requires_same_sets() {
        let est = [0.5, 0.3, 0.1, 0.1];
        let act_same = [0.4, 0.4, 0.1, 0.1];
        let act_diff = [0.1, 0.1, 0.4, 0.4];
        assert!(PopularityEstimator::estimate_matches(&est, &act_same, 2));
        assert!(!PopularityEstimator::estimate_matches(&est, &act_diff, 2));
    }

    #[test]
    fn unseen_path_falls_back_to_marginal() {
        let (est, _) = profiled(3);
        let tok = TokenPath {
            class: 0,
            // An implausible path unlikely to be profiled.
            selections: (0..12).map(|i| vec![(i % 16) as u16]).collect(),
        };
        // Must not panic and must return a normalized distribution.
        let d = est.next_layer_distribution(&tok, 6);
        let total: f64 = d.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_tokens_give_zero_estimate() {
        let (est, _) = profiled(3);
        let e = est.estimate_popularity(&[], 5, 1);
        assert!(e.iter().all(|&v| v == 0.0));
    }
}
