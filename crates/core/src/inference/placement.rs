//! Popularity-driven expert placement (§5.2, Eq. (1)).
//!
//! Given an (estimated or actual) popularity vector, the scheduler
//! computes each expert's device demand `n_e = N x popularity(e)`,
//! gives popular experts `floor(n_e)` dedicated replica devices, and
//! packs the fractional remainders onto shared devices with the
//! first-fit-decreasing heuristic so the number of devices used is
//! minimized. Experts with no estimate spread over the remaining free
//! devices, or land on the least-loaded device when none are free.

use lina_model::ExpertPlacement;
use lina_netsim::DeviceId;

/// Configuration of the placement computation.
#[derive(Clone, Copy, Debug)]
pub struct PlacementConfig {
    /// Devices available (`N` in Eq. (1)).
    pub devices: usize,
    /// Maximum experts packed on one device (§6.2 bounds weight-swap
    /// overhead; the paper uses 4).
    pub max_experts_per_device: usize,
}

/// Computes a placement from a popularity vector.
///
/// `popularity[e]` is the fraction of demand expected for expert `e`
/// (entries may sum to less than 1 after the estimator's top-k
/// truncation; zero entries mean "no estimate").
///
/// # Examples
///
/// ```
/// use lina_core::{popularity_placement, PlacementConfig};
///
/// // One hot expert and three cold ones on four devices: the hot one
/// // is replicated, the cold ones share.
/// let pop = [0.7, 0.1, 0.1, 0.1];
/// let p = popularity_placement(&pop, PlacementConfig {
///     devices: 4,
///     max_experts_per_device: 4,
/// });
/// assert!(p.hosts[0].len() >= 2);
/// assert!(p.is_complete());
/// ```
///
/// # Panics
///
/// Panics if `devices` or `max_experts_per_device` is zero, or if the
/// popularity vector is empty.
pub fn popularity_placement(popularity: &[f64], config: PlacementConfig) -> ExpertPlacement {
    assert!(config.devices > 0, "popularity_placement: zero devices");
    assert!(
        config.max_experts_per_device > 0,
        "popularity_placement: zero cap"
    );
    assert!(!popularity.is_empty(), "popularity_placement: no experts");
    let n = config.devices as f64;
    let experts = popularity.len();
    // The estimator's top-k truncation drops probability mass, so the
    // vector may sum well below 1; demand must still account for the
    // whole cluster, so normalize (zero entries stay "no estimate").
    let mass: f64 = popularity.iter().sum();
    let popularity: Vec<f64> = if mass > 0.0 {
        popularity.iter().map(|&p| p / mass).collect()
    } else {
        popularity.to_vec()
    };

    // Per-device load bins. Each bin is (load, expert list).
    let mut bins: Vec<(f64, Vec<usize>)> = Vec::new();
    let mut hosts: Vec<Vec<usize>> = vec![Vec::new(); experts];

    // Demand in device units, processed in decreasing order (FFD).
    let mut order: Vec<usize> = (0..experts).collect();
    order.sort_by(|&a, &b| {
        popularity[b]
            .partial_cmp(&popularity[a])
            .expect("finite popularity")
            .then(a.cmp(&b))
    });

    let mut remainders: Vec<(usize, f64)> = Vec::new();
    let mut dedicated_used = 0usize;
    for &e in &order {
        let n_e = n * popularity[e];
        if n_e <= 0.0 {
            continue;
        }
        // Dedicated replica devices for the integral part, bounded so
        // dedicated devices never exhaust the cluster.
        let full = (n_e.floor() as usize).min(config.devices.saturating_sub(dedicated_used + 1));
        for _ in 0..full {
            bins.push((1.0, vec![e]));
            hosts[e].push(usize::MAX); // Device ids assigned later.
            dedicated_used += 1;
        }
        let rem = n_e - full as f64;
        if rem > 1e-9 || full == 0 {
            remainders.push((e, rem.max(1e-9)));
        }
    }

    // Decreasing-order packing of the remainders over the fixed device
    // budget: each item goes to the least-loaded eligible bin,
    // creating a new bin while devices remain. (Plain FFD with a merge
    // step minimizes devices but can overload the merged ones; packing
    // against the known device count keeps loads near the mean while
    // still giving unpopular experts shared devices.)
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
    for (e, rem) in remainders {
        let can_open = bins.len() < config.devices;
        let best = bins
            .iter()
            .enumerate()
            .filter(|(_, (_, list))| {
                list.len() < config.max_experts_per_device && !list.contains(&e)
            })
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite"))
            .map(|(i, (load, _))| (i, *load));
        match best {
            // Open a fresh device rather than push a bin past unit load.
            Some((_, load)) if can_open && load + rem > 1.0 + 1e-9 => {
                bins.push((rem, vec![e]));
            }
            Some((i, _)) => {
                bins[i].0 += rem;
                bins[i].1.push(e);
            }
            None if can_open => bins.push((rem, vec![e])),
            None => {
                // Every bin is at the expert cap: relax the cap on the
                // least-loaded bin rather than fail.
                let i = bins
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, list))| !list.contains(&e))
                    .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("finite"))
                    .map(|(i, _)| i)
                    .expect("an expert cannot already be on every device");
                bins[i].0 += rem;
                bins[i].1.push(e);
            }
        }
        hosts[e].push(usize::MAX);
    }

    // Experts with no estimate: spread over free devices if any,
    // otherwise join the least-loaded bin (respecting the cap when
    // possible).
    let unplaced: Vec<usize> = (0..experts).filter(|&e| hosts[e].is_empty()).collect();
    for e in unplaced {
        if bins.len() < config.devices {
            bins.push((0.0, vec![e]));
        } else {
            // Prefer a bin with cap headroom; when replication has
            // filled every bin to the cap, relax it on the least-loaded
            // bin rather than fail (mirrors the remainder packing).
            let bin = bins
                .iter_mut()
                .filter(|(_, list)| list.len() < config.max_experts_per_device)
                .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
            let bin = match bin {
                Some(bin) => bin,
                None => bins
                    .iter_mut()
                    .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"))
                    .expect("devices > 0"),
            };
            bin.0 += 1e-9;
            bin.1.push(e);
        }
        hosts[e].push(usize::MAX);
    }

    // Materialize device ids in bin order, with each replica's share
    // equal to the load the bin allocation gave it.
    let mut hosts: Vec<Vec<DeviceId>> = vec![Vec::new(); experts];
    let mut shares: Vec<Vec<f64>> = vec![Vec::new(); experts];
    for (d, (_, list)) in bins.iter().enumerate() {
        for &e in list {
            let dev = DeviceId(d as u32);
            if !hosts[e].contains(&dev) {
                hosts[e].push(dev);
                shares[e].push(0.0);
            }
        }
    }
    // Dedicated bins carry one unit; shared bins carry the remainder.
    // Recover each replica's share from the bin structure: a replica in
    // a single-expert bin of load ~1 is dedicated; otherwise it holds
    // the expert's fractional remainder.
    for e in 0..experts {
        let n_e = n * popularity[e];
        let replicas = hosts[e].len();
        for (r, share) in shares[e].iter_mut().enumerate() {
            // A lone replica and every dedicated (non-last) replica of a
            // replicated expert carry one full unit.
            *share = if replicas == 1 || r < replicas - 1 {
                1.0
            } else {
                // Last replica takes the fractional remainder (at
                // least a sliver so it participates).
                (n_e - (replicas - 1) as f64).max(0.05)
            };
        }
    }
    let placement = ExpertPlacement { hosts, shares };
    assert!(
        placement.is_complete(),
        "popularity_placement: expert left unhosted"
    );
    placement
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(devices: usize) -> PlacementConfig {
        PlacementConfig {
            devices,
            max_experts_per_device: 4,
        }
    }

    #[test]
    fn uniform_popularity_keeps_one_expert_per_device() {
        let pop = vec![1.0 / 16.0; 16];
        let p = popularity_placement(&pop, config(16));
        assert!(p.is_complete());
        assert_eq!(p.total_replicas(), 16);
        assert!(p.max_per_device(16) <= 2);
    }

    #[test]
    fn popular_expert_gets_replicas() {
        // Expert 0 wants half the cluster.
        let mut pop = vec![0.5f64 / 15.0; 16];
        pop[0] = 0.5;
        let p = popularity_placement(&pop, config(16));
        assert!(p.is_complete());
        assert!(
            p.hosts[0].len() >= 7,
            "popular expert got {} replicas: {:?}",
            p.hosts[0].len(),
            p.hosts[0]
        );
    }

    #[test]
    fn tight_cap_with_replication_stays_feasible() {
        // Cap 1 with a hot expert: replication eats device slots, so
        // the no-estimate experts cannot all fit under the cap. The
        // placement must relax the cap instead of failing.
        let mut pop = vec![0.0f64; 8];
        pop[0] = 0.6;
        pop[1] = 0.2;
        let p = popularity_placement(
            &pop,
            PlacementConfig {
                devices: 8,
                max_experts_per_device: 1,
            },
        );
        assert!(p.is_complete());
    }

    #[test]
    fn unpopular_experts_pack_together() {
        // Two hot experts, fourteen cold ones.
        let mut pop = vec![0.02f64; 16];
        pop[3] = 0.36;
        pop[9] = 0.36;
        let p = popularity_placement(&pop, config(16));
        assert!(p.is_complete());
        assert!(p.hosts[3].len() >= 4, "hot expert 3: {:?}", p.hosts[3]);
        assert!(p.hosts[9].len() >= 4, "hot expert 9: {:?}", p.hosts[9]);
        // Cold experts share devices.
        let mut device_experts = vec![0usize; 16];
        for (e, hs) in p.hosts.iter().enumerate() {
            if e != 3 && e != 9 {
                for d in hs {
                    device_experts[d.0 as usize] += 1;
                }
            }
        }
        assert!(
            device_experts.iter().any(|&c| c >= 2),
            "no device packs multiple cold experts: {device_experts:?}"
        );
    }

    #[test]
    fn respects_max_per_device_under_normal_load() {
        let pop = vec![1.0 / 16.0; 16];
        let p = popularity_placement(
            &pop,
            PlacementConfig {
                devices: 8,
                max_experts_per_device: 4,
            },
        );
        assert!(p.is_complete());
        assert!(p.max_per_device(8) <= 4);
    }

    #[test]
    fn experts_without_estimate_fill_free_devices() {
        // Only expert 0 has an estimate and a modest one; the rest must
        // still be hosted somewhere.
        let mut pop = vec![0.0f64; 8];
        pop[0] = 0.3;
        let p = popularity_placement(&pop, config(8));
        assert!(p.is_complete());
        for hs in &p.hosts {
            assert!(!hs.is_empty());
        }
    }

    #[test]
    fn never_uses_more_devices_than_available() {
        let pop: Vec<f64> = (0..16).map(|e| 1.0 / (e + 1) as f64).collect();
        for devices in [4usize, 8, 16] {
            let p = popularity_placement(&pop, config(devices));
            for hs in &p.hosts {
                for d in hs {
                    assert!((d.0 as usize) < devices, "device {d:?} out of range");
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let pop: Vec<f64> = (0..16).map(|e| ((e * 7) % 5 + 1) as f64 / 48.0).collect();
        let a = popularity_placement(&pop, config(16));
        let b = popularity_placement(&pop, config(16));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "zero devices")]
    fn zero_devices_panics() {
        popularity_placement(
            &[1.0],
            PlacementConfig {
                devices: 0,
                max_experts_per_device: 1,
            },
        );
    }
}
