//! Lina's two-phase inference scheduling protocol (§5.2, §6.2).
//!
//! * **Phase one** runs right after the popularity estimate for the
//!   next layer is available (i.e. once the current layer's gate has
//!   fixed each token's path): it computes the estimation-based
//!   placement. All coordination piggybacks on the regular all-to-all
//!   and the ~6.2 ms of scheduling logic overlaps with the current
//!   layer's expert computation.
//! * **Phase two** runs after the next layer's gate produces the actual
//!   routing: the scheduler compares the estimated and actual top-2k
//!   expert sets. A match costs only a resume broadcast (~1.45 ms);
//!   a mismatch re-runs the placement with the actual popularity and
//!   blocks for the full scheduling time.

use lina_model::{ExpertPlacement, LayerRouting};
use lina_simcore::SimDuration;
use lina_workload::TokenPath;

use crate::inference::estimator::PopularityEstimator;
use crate::inference::placement::{popularity_placement, PlacementConfig};

/// Configuration of the two-phase scheduler.
#[derive(Clone, Debug)]
pub struct TwoPhaseConfig {
    /// Devices in the cluster.
    pub devices: usize,
    /// Gate fan-out `k` (1 in inference).
    pub top_k: usize,
    /// Maximum experts packed per device (paper: 4).
    pub max_experts_per_device: usize,
    /// Full scheduling-logic time (collect, decide, coordinate): the
    /// paper measures ~6.2 ms for either phase.
    pub schedule_time: SimDuration,
    /// Phase-two cost when no fine-tuning is needed (resume broadcast):
    /// ~1.45 ms.
    pub resume_time: SimDuration,
    /// Relative popularity excess a missed top-2k expert must show
    /// before phase two re-schedules (near-tie swaps leave the packing
    /// intact, per §7.3.2's error analysis).
    pub deviation_tolerance: f64,
    /// Ablation: disable phase one (schedule from actual routing only,
    /// blocking each layer).
    pub use_estimation: bool,
    /// Ablation: disable phase two (trust the estimate blindly).
    pub use_finetuning: bool,
}

impl TwoPhaseConfig {
    /// The paper's defaults for a cluster of `devices` devices.
    pub fn paper_defaults(devices: usize) -> Self {
        TwoPhaseConfig {
            devices,
            top_k: 1,
            max_experts_per_device: 4,
            schedule_time: SimDuration::from_micros(6200),
            resume_time: SimDuration::from_micros(1450),
            deviation_tolerance: 0.25,
            use_estimation: true,
            use_finetuning: true,
        }
    }
}

/// Phase-one output: the placement to use for the next layer.
#[derive(Clone, Debug)]
pub struct PhaseOne {
    /// Estimation-based placement.
    pub placement: ExpertPlacement,
    /// The popularity estimate behind it (for the phase-two check).
    pub estimate: Vec<f64>,
}

/// Phase-two outcome.
#[derive(Clone, Debug, PartialEq)]
pub enum PhaseTwo {
    /// Estimate held: broadcast resume; keep the placement.
    Resume,
    /// Estimate deviated: re-scheduled placement from the actual
    /// popularity.
    Finetune(ExpertPlacement),
}

/// The two-phase scheduler. Stateless between layers apart from the
/// estimator tables.
#[derive(Clone, Debug)]
pub struct TwoPhaseScheduler {
    config: TwoPhaseConfig,
    estimator: PopularityEstimator,
}

impl TwoPhaseScheduler {
    /// Builds a scheduler from a profiled estimator.
    pub fn new(config: TwoPhaseConfig, estimator: PopularityEstimator) -> Self {
        TwoPhaseScheduler { config, estimator }
    }

    /// The configuration.
    pub fn config(&self) -> &TwoPhaseConfig {
        &self.config
    }

    /// The estimator.
    pub fn estimator(&self) -> &PopularityEstimator {
        &self.estimator
    }

    fn placement_config(&self) -> PlacementConfig {
        PlacementConfig {
            devices: self.config.devices,
            max_experts_per_device: self.config.max_experts_per_device,
        }
    }

    /// True once enough layers have been observed for estimation (Lina
    /// starts scheduling from the `l`-th layer).
    pub fn can_estimate(&self, next_layer: usize) -> bool {
        self.config.use_estimation && next_layer >= self.estimator.path_length()
    }

    /// Phase one for `next_layer`, using tokens' observed paths up to
    /// `next_layer - 1`. Returns `None` when estimation is disabled or
    /// the model is still within the first `l` layers (the "slower
    /// start" of Table 5).
    pub fn phase_one(&self, tokens: &[TokenPath], next_layer: usize) -> Option<PhaseOne> {
        if !self.can_estimate(next_layer) || next_layer == 0 {
            return None;
        }
        let estimate =
            self.estimator
                .estimate_popularity(tokens, next_layer - 1, self.config.top_k);
        if estimate.iter().all(|&v| v <= 0.0) {
            return None;
        }
        let placement = popularity_placement(&estimate, self.placement_config());
        Some(PhaseOne {
            placement,
            estimate,
        })
    }

    /// Phase two: checks the estimate against the actual routing.
    pub fn phase_two(&self, phase_one: &PhaseOne, actual: &LayerRouting) -> PhaseTwo {
        if !self.config.use_finetuning {
            return PhaseTwo::Resume;
        }
        let actual_pop = actual.popularity();
        let two_k = (2 * self.config.top_k).min(actual_pop.len());
        if PopularityEstimator::deviates_too_far(
            &phase_one.estimate,
            &actual_pop,
            two_k,
            self.config.deviation_tolerance,
        )
        .is_none()
        {
            PhaseTwo::Resume
        } else {
            PhaseTwo::Finetune(popularity_placement(&actual_pop, self.placement_config()))
        }
    }

    /// The placement used when no estimate exists (first `l` layers, or
    /// the w/o-estimation ablation before its reactive scheduling):
    /// the static one-expert-per-device baseline.
    pub fn default_placement(&self, experts: usize) -> ExpertPlacement {
        ExpertPlacement::one_per_device(experts, self.config.devices)
    }

    /// Reactive scheduling from the actual routing (the w/o-estimation
    /// ablation): always blocks for the full schedule time.
    pub fn schedule_from_actual(&self, actual: &LayerRouting) -> ExpertPlacement {
        popularity_placement(&actual.popularity(), self.placement_config())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lina_workload::{Mode, TokenBatch, TokenSource, WorkloadSpec};

    fn scheduler(l: usize) -> (TwoPhaseScheduler, TokenSource) {
        let spec = WorkloadSpec::enwik8(16, 12);
        let mut src = TokenSource::new(&spec, 1, 11);
        let batches: Vec<TokenBatch> = (0..8)
            .map(|_| src.sample_batch(16, 512, Mode::Train))
            .collect();
        let est = PopularityEstimator::profile(&batches, l);
        let cfg = TwoPhaseConfig::paper_defaults(16);
        (TwoPhaseScheduler::new(cfg, est), src)
    }

    #[test]
    fn no_estimation_before_l_layers() {
        let (s, mut src) = scheduler(3);
        let batch = src.sample_batch(16, 64, Mode::Inference);
        assert!(s.phase_one(&batch.tokens, 0).is_none());
        assert!(s.phase_one(&batch.tokens, 2).is_none());
        assert!(s.phase_one(&batch.tokens, 3).is_some());
    }

    #[test]
    fn estimation_ablation_disables_phase_one() {
        let (mut s, mut src) = scheduler(3);
        s.config.use_estimation = false;
        let batch = src.sample_batch(16, 64, Mode::Inference);
        assert!(s.phase_one(&batch.tokens, 6).is_none());
    }

    #[test]
    fn phase_two_resumes_on_match() {
        let (s, mut src) = scheduler(3);
        let batch = src.sample_batch(16, 512, Mode::Inference);
        let next_layer = 7;
        let p1 = s.phase_one(&batch.tokens, next_layer).expect("estimable");
        let actual = batch.routing_for_layer(next_layer);
        match s.phase_two(&p1, &actual) {
            PhaseTwo::Resume => {}
            PhaseTwo::Finetune(p) => {
                // A fine-tune must produce a complete placement.
                assert!(p.is_complete());
            }
        }
    }

    #[test]
    fn phase_two_finetunes_on_gross_mismatch() {
        let (s, mut src) = scheduler(3);
        let batch = src.sample_batch(16, 256, Mode::Inference);
        let p1 = s.phase_one(&batch.tokens, 6).expect("estimable");
        // Fabricate an actual routing concentrated on the expert the
        // estimate ranks last.
        let est_rank = crate::inference::estimator::top_indices(&p1.estimate, 16);
        let coldest = *est_rank.last().expect("16 experts");
        let mut actual = LayerRouting::empty(16, 16);
        for d in 0..16 {
            actual.counts[d][coldest] = 100;
        }
        match s.phase_two(&p1, &actual) {
            PhaseTwo::Finetune(p) => {
                assert!(p.is_complete());
                assert!(
                    p.hosts[coldest].len() > 1,
                    "fine-tuned placement must replicate the hot expert"
                );
            }
            PhaseTwo::Resume => panic!("gross mismatch must trigger fine-tuning"),
        }
    }

    #[test]
    fn finetuning_ablation_always_resumes() {
        let (mut s, mut src) = scheduler(3);
        s.config.use_finetuning = false;
        let batch = src.sample_batch(16, 128, Mode::Inference);
        let p1 = s.phase_one(&batch.tokens, 5).expect("estimable");
        let mut actual = LayerRouting::empty(16, 16);
        for d in 0..16 {
            actual.counts[d][0] = 100;
        }
        assert_eq!(s.phase_two(&p1, &actual), PhaseTwo::Resume);
    }

    #[test]
    fn finetune_rate_reasonable_at_l3() {
        // Table 5: fine-tuning kicks in for ~26% of layers at l = 3 and
        // ~77% at l = 1. Verify the ordering and a sane range.
        let mut rates = Vec::new();
        for l in [1usize, 3] {
            let (s, _) = scheduler(l);
            let spec = WorkloadSpec::enwik8(16, 12);
            let mut infer = TokenSource::new(&spec, 1, 321);
            let mut finetunes = 0;
            let mut total = 0;
            for _ in 0..10 {
                let batch = infer.sample_batch(16, 256, Mode::Inference);
                for next_layer in l.max(1)..12 {
                    if let Some(p1) = s.phase_one(&batch.tokens, next_layer) {
                        let actual = batch.routing_for_layer(next_layer);
                        if matches!(s.phase_two(&p1, &actual), PhaseTwo::Finetune(_)) {
                            finetunes += 1;
                        }
                        total += 1;
                    }
                }
            }
            rates.push(finetunes as f64 / total as f64);
        }
        assert!(
            rates[0] > rates[1],
            "l=1 fine-tune rate {} must exceed l=3 rate {}",
            rates[0],
            rates[1]
        );
        assert!(rates[1] < 0.8, "l=3 fine-tune rate {} too high", rates[1]);
    }

    #[test]
    fn default_placement_is_static() {
        let (s, _) = scheduler(3);
        let p = s.default_placement(16);
        assert_eq!(p.total_replicas(), 16);
    }
}
