//! Property-based tests of Lina's schedulers: placement invariants and
//! estimator normalization under arbitrary inputs.

use proptest::prelude::*;

use lina_core::{popularity_placement, top_indices, PlacementConfig, PopularityEstimator};
use lina_workload::{Mode, TokenBatch, TokenSource, WorkloadSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every expert ends up hosted, never on an out-of-range device,
    /// and shares stay positive — for arbitrary popularity vectors.
    #[test]
    fn placement_is_always_complete(
        pop in proptest::collection::vec(0.0f64..1.0, 1..32),
        devices in 1usize..32,
        cap in 1usize..6,
    ) {
        let config = PlacementConfig { devices, max_experts_per_device: cap };
        let p = popularity_placement(&pop, config);
        prop_assert!(p.is_complete());
        prop_assert_eq!(p.hosts.len(), pop.len());
        for (hs, ss) in p.hosts.iter().zip(&p.shares) {
            prop_assert_eq!(hs.len(), ss.len());
            for d in hs {
                prop_assert!((d.0 as usize) < devices);
            }
            for &s in ss {
                prop_assert!(s > 0.0);
            }
        }
    }

    /// Hotter experts never get fewer replicas than colder ones.
    #[test]
    fn replicas_are_monotone_in_popularity(
        seed_pop in proptest::collection::vec(0.01f64..1.0, 4..24),
    ) {
        let config = PlacementConfig {
            devices: seed_pop.len(),
            max_experts_per_device: 4,
        };
        let p = popularity_placement(&seed_pop, config);
        let total: f64 = seed_pop.iter().sum();
        for a in 0..seed_pop.len() {
            for b in 0..seed_pop.len() {
                // Require a decisive popularity gap of one device unit.
                if seed_pop[a] / total > seed_pop[b] / total + 1.0 / seed_pop.len() as f64 {
                    prop_assert!(
                        p.hosts[a].len() >= p.hosts[b].len(),
                        "expert {a} (pop {}) got {} replicas but {b} (pop {}) got {}",
                        seed_pop[a],
                        p.hosts[a].len(),
                        seed_pop[b],
                        p.hosts[b].len()
                    );
                }
            }
        }
    }

    /// top_indices returns distinct, in-range, descending-value indices.
    #[test]
    fn top_indices_well_formed(values in proptest::collection::vec(-1e3f64..1e3, 1..64), k in 0usize..70) {
        let top = top_indices(&values, k);
        prop_assert_eq!(top.len(), k.min(values.len()));
        let mut seen = std::collections::BTreeSet::new();
        let mut last = f64::INFINITY;
        for &i in &top {
            prop_assert!(i < values.len());
            prop_assert!(seen.insert(i));
            prop_assert!(values[i] <= last);
            last = values[i];
        }
    }

    /// The strict match implies no deviation at any tolerance, and
    /// higher tolerance never flags more.
    #[test]
    fn deviation_is_monotone_in_tolerance(
        est in proptest::collection::vec(0.0f64..1.0, 4..16),
        act in proptest::collection::vec(0.001f64..1.0, 4..16),
        t1 in 0.0f64..1.0,
        t2 in 0.0f64..1.0,
    ) {
        prop_assume!(est.len() == act.len());
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let two_k = 2usize.min(est.len());
        if PopularityEstimator::deviates_too_far(&est, &act, two_k, lo).is_none() {
            prop_assert!(
                PopularityEstimator::deviates_too_far(&est, &act, two_k, hi).is_none()
            );
        }
        if PopularityEstimator::estimate_matches(&est, &act, two_k) {
            prop_assert!(
                PopularityEstimator::deviates_too_far(&est, &act, two_k, lo).is_none()
            );
        }
    }
}

/// Estimator distributions stay normalized for arbitrary profile sizes
/// and path lengths (non-proptest sweep; profiling is too heavy for
/// hundreds of cases).
#[test]
fn estimator_distributions_normalized_across_path_lengths() {
    let spec = WorkloadSpec::enwik8(8, 6);
    let mut src = TokenSource::new(&spec, 1, 3);
    let batches: Vec<TokenBatch> =
        (0..3).map(|_| src.sample_batch(8, 256, Mode::Train)).collect();
    for l in 1..=4 {
        let est = PopularityEstimator::profile(&batches, l);
        let probe = src.sample_batch(8, 64, Mode::Inference);
        for layer in 0..5 {
            for tok in probe.tokens.iter().take(16) {
                let dist = est.next_layer_distribution(tok, layer);
                let total: f64 = dist.iter().sum();
                assert!((total - 1.0).abs() < 1e-9, "l={l} layer={layer}: {total}");
            }
            let agg = est.estimate_popularity(&probe.tokens, layer, 1);
            let mass: f64 = agg.iter().sum();
            assert!(mass <= 1.0 + 1e-9, "aggregate mass {mass} > 1");
        }
    }
}
