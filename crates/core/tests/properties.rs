//! Randomized property tests of Lina's schedulers: placement invariants
//! and estimator normalization under many deterministically seeded
//! inputs.

use lina_core::{popularity_placement, top_indices, PlacementConfig, PopularityEstimator};
use lina_simcore::Rng;
use lina_workload::{Mode, TokenBatch, TokenSource, WorkloadSpec};

/// Every expert ends up hosted, never on an out-of-range device, and
/// shares stay positive — for arbitrary popularity vectors.
#[test]
fn placement_is_always_complete() {
    let mut meta = Rng::new(0x9ACE);
    for _ in 0..64 {
        let experts = 1 + meta.index(31);
        let pop: Vec<f64> = (0..experts).map(|_| meta.f64()).collect();
        let devices = 1 + meta.index(31);
        let cap = 1 + meta.index(5);
        let config = PlacementConfig {
            devices,
            max_experts_per_device: cap,
        };
        let p = popularity_placement(&pop, config);
        assert!(p.is_complete());
        assert_eq!(p.hosts.len(), pop.len());
        for (hs, ss) in p.hosts.iter().zip(&p.shares) {
            assert_eq!(hs.len(), ss.len());
            for d in hs {
                assert!((d.0 as usize) < devices);
            }
            for &s in ss {
                assert!(s > 0.0);
            }
        }
    }
}

/// Hotter experts never get fewer replicas than colder ones.
#[test]
fn replicas_are_monotone_in_popularity() {
    let mut meta = Rng::new(0x4040);
    for _ in 0..64 {
        let n = 4 + meta.index(20);
        let seed_pop: Vec<f64> = (0..n).map(|_| meta.uniform(0.01, 1.0)).collect();
        let config = PlacementConfig {
            devices: n,
            max_experts_per_device: 4,
        };
        let p = popularity_placement(&seed_pop, config);
        let total: f64 = seed_pop.iter().sum();
        for a in 0..n {
            for b in 0..n {
                // Require a decisive popularity gap of one device unit.
                if seed_pop[a] / total > seed_pop[b] / total + 1.0 / n as f64 {
                    assert!(
                        p.hosts[a].len() >= p.hosts[b].len(),
                        "expert {a} (pop {}) got {} replicas but {b} (pop {}) got {}",
                        seed_pop[a],
                        p.hosts[a].len(),
                        seed_pop[b],
                        p.hosts[b].len()
                    );
                }
            }
        }
    }
}

/// top_indices returns distinct, in-range, descending-value indices.
#[test]
fn top_indices_well_formed() {
    let mut meta = Rng::new(0x7091);
    for _ in 0..128 {
        let n = 1 + meta.index(63);
        let values: Vec<f64> = (0..n).map(|_| meta.uniform(-1e3, 1e3)).collect();
        let k = meta.index(70);
        let top = top_indices(&values, k);
        assert_eq!(top.len(), k.min(values.len()));
        let mut seen = std::collections::BTreeSet::new();
        let mut last = f64::INFINITY;
        for &i in &top {
            assert!(i < values.len());
            assert!(seen.insert(i));
            assert!(values[i] <= last);
            last = values[i];
        }
    }
}

/// The strict match implies no deviation at any tolerance, and higher
/// tolerance never flags more.
#[test]
fn deviation_is_monotone_in_tolerance() {
    let mut meta = Rng::new(0xDE7);
    for _ in 0..128 {
        let n = 4 + meta.index(12);
        let est: Vec<f64> = (0..n).map(|_| meta.f64()).collect();
        let act: Vec<f64> = (0..n).map(|_| meta.uniform(0.001, 1.0)).collect();
        let (t1, t2) = (meta.f64(), meta.f64());
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let two_k = 2usize.min(n);
        if PopularityEstimator::deviates_too_far(&est, &act, two_k, lo).is_none() {
            assert!(PopularityEstimator::deviates_too_far(&est, &act, two_k, hi).is_none());
        }
        if PopularityEstimator::estimate_matches(&est, &act, two_k) {
            assert!(PopularityEstimator::deviates_too_far(&est, &act, two_k, lo).is_none());
        }
    }
}

/// Estimator distributions stay normalized for arbitrary profile sizes
/// and path lengths.
#[test]
fn estimator_distributions_normalized_across_path_lengths() {
    let spec = WorkloadSpec::enwik8(8, 6);
    let mut src = TokenSource::new(&spec, 1, 3);
    let batches: Vec<TokenBatch> = (0..3)
        .map(|_| src.sample_batch(8, 256, Mode::Train))
        .collect();
    for l in 1..=4 {
        let est = PopularityEstimator::profile(&batches, l);
        let probe = src.sample_batch(8, 64, Mode::Inference);
        for layer in 0..5 {
            for tok in probe.tokens.iter().take(16) {
                let dist = est.next_layer_distribution(tok, layer);
                let total: f64 = dist.iter().sum();
                assert!((total - 1.0).abs() < 1e-9, "l={l} layer={layer}: {total}");
            }
            let agg = est.estimate_popularity(&probe.tokens, layer, 1);
            let mass: f64 = agg.iter().sum();
            assert!(mass <= 1.0 + 1e-9, "aggregate mass {mass} > 1");
        }
    }
}
