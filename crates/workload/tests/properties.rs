//! Randomized property tests of the workload generator, swept over many
//! deterministic seeds.

use lina_simcore::Rng;
use lina_workload::{pattern_ratio, popularity, AffinityStats, Mode, TokenSource, WorkloadSpec};

/// Batches always have the requested shape and in-range selections.
#[test]
fn batches_are_well_formed() {
    let mut meta = Rng::new(0xB47C ^ 0x1234);
    for _ in 0..32 {
        let seed = meta.next_u64();
        let experts = 1usize << (1 + meta.index(4));
        let tokens = 1 + meta.index(199);
        let top_k = (1 + meta.index(2)).min(experts);
        let spec = WorkloadSpec::enwik8(experts, 6);
        let mut src = TokenSource::new(&spec, top_k, seed);
        for mode in [Mode::Train, Mode::Inference] {
            let batch = src.sample_batch(4, tokens, mode);
            assert_eq!(batch.len(), 4 * tokens);
            for tok in &batch.tokens {
                assert!(tok.class < spec.classes);
                assert_eq!(tok.selections.len(), 6);
                for sel in &tok.selections {
                    assert_eq!(sel.len(), top_k);
                    let mut distinct = sel.clone();
                    distinct.sort_unstable();
                    distinct.dedup();
                    assert_eq!(distinct.len(), top_k, "duplicate experts in top-k");
                    for &e in sel {
                        assert!((e as usize) < experts);
                    }
                }
            }
        }
    }
}

/// Popularity is a distribution and routing conserves tokens at every
/// layer.
#[test]
fn popularity_is_a_distribution() {
    let mut meta = Rng::new(0xD157);
    for _ in 0..16 {
        let seed = meta.next_u64();
        let tokens = 16 + meta.index(240);
        let spec = WorkloadSpec::wmt_en_de(16, 8);
        let mut src = TokenSource::new(&spec, 1, seed);
        let batch = src.sample_batch(8, tokens, Mode::Inference);
        for layer in 0..8 {
            let pop = popularity(&batch, layer);
            let total: f64 = pop.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(pop.iter().all(|&p| (0.0..=1.0).contains(&p)));
            let routing = batch.routing_for_layer(layer);
            assert_eq!(routing.total(), batch.len());
        }
    }
}

/// The pattern ratio is a proper fraction and grows with k.
#[test]
fn pattern_ratio_is_fraction_monotone_in_k() {
    let mut meta = Rng::new(0x9A77);
    for _ in 0..8 {
        let seed = meta.next_u64();
        let spec = WorkloadSpec::enwik8(16, 8);
        let mut src = TokenSource::new(&spec, 1, seed);
        let batch = src.sample_batch(8, 512, Mode::Inference);
        for layer in 0..7 {
            let mut last = 0.0;
            for k in 1..=4 {
                let r = pattern_ratio(&batch, layer, k);
                assert!((0.0..=1.0).contains(&r));
                assert!(r + 1e-12 >= last, "ratio fell as k grew");
                last = r;
            }
        }
    }
}

/// Measured inter-layer affinity rises with `map_correlation` and
/// collapses to (near) zero when consecutive layers select
/// independently.
#[test]
fn affinity_rises_with_map_correlation() {
    let mut meta = Rng::new(0xAF1A);
    for _ in 0..4 {
        let seed = meta.next_u64();
        let mut scores = Vec::new();
        for &corr in &[0.0, 0.3, 0.6, 0.9] {
            let mut spec = WorkloadSpec::enwik8(8, 6);
            // Fine class granularity: with only ~experts classes, a
            // layer's expert nearly identifies the class and the class
            // carries affinity on its own even at zero correlation.
            spec.classes = 256;
            // Bursts correlate layers through the per-batch topic
            // boost (both layers skew toward the topic classes), which
            // is real affinity but not the map correlation under test.
            spec.burst_strength = 0.0;
            spec.map_correlation = corr;
            let mut src = TokenSource::new(&spec, 1, seed);
            let batches: Vec<_> = (0..4)
                .map(|_| src.sample_batch(4, 512, Mode::Inference))
                .collect();
            let stats = AffinityStats::from_batches(&batches, 6, 8);
            scores.push(stats.affinity_score());
        }
        assert!(
            scores[0].abs() < 0.05,
            "independent layers must score near zero, got {}",
            scores[0]
        );
        for w in scores.windows(2) {
            assert!(
                w[1] + 0.02 > w[0],
                "affinity fell as correlation grew: {scores:?}"
            );
        }
        assert!(
            scores[3] > scores[0] + 0.1,
            "full correlation must clearly beat independence: {scores:?}"
        );
    }
}

/// Determinism: the same seed reproduces the same batch.
#[test]
fn seeded_reproducibility() {
    let mut meta = Rng::new(0x5EED);
    for _ in 0..16 {
        let seed = meta.next_u64();
        let spec = WorkloadSpec::imdb(8, 6);
        let mut a = TokenSource::new(&spec, 1, seed);
        let mut b = TokenSource::new(&spec, 1, seed);
        let ba = a.sample_batch(4, 64, Mode::Inference);
        let bb = b.sample_batch(4, 64, Mode::Inference);
        assert_eq!(ba.tokens, bb.tokens);
    }
}
