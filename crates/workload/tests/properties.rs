//! Property-based tests of the workload generator.

use proptest::prelude::*;

use lina_workload::{pattern_ratio, popularity, Mode, TokenSource, WorkloadSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Batches always have the requested shape and in-range selections.
    #[test]
    fn batches_are_well_formed(
        seed in any::<u64>(),
        experts_pow in 1u32..5,
        tokens in 1usize..200,
        top_k in 1usize..3,
    ) {
        let experts = 1usize << experts_pow;
        prop_assume!(top_k <= experts);
        let spec = WorkloadSpec::enwik8(experts, 6);
        let mut src = TokenSource::new(&spec, top_k, seed);
        for mode in [Mode::Train, Mode::Inference] {
            let batch = src.sample_batch(4, tokens, mode);
            prop_assert_eq!(batch.len(), 4 * tokens);
            for tok in &batch.tokens {
                prop_assert!(tok.class < spec.classes);
                prop_assert_eq!(tok.selections.len(), 6);
                for sel in &tok.selections {
                    prop_assert_eq!(sel.len(), top_k);
                    let mut distinct = sel.clone();
                    distinct.sort_unstable();
                    distinct.dedup();
                    prop_assert_eq!(distinct.len(), top_k, "duplicate experts in top-k");
                    for &e in sel {
                        prop_assert!((e as usize) < experts);
                    }
                }
            }
        }
    }

    /// Popularity is a distribution and routing conserves tokens at
    /// every layer.
    #[test]
    fn popularity_is_a_distribution(seed in any::<u64>(), tokens in 16usize..256) {
        let spec = WorkloadSpec::wmt_en_de(16, 8);
        let mut src = TokenSource::new(&spec, 1, seed);
        let batch = src.sample_batch(8, tokens, Mode::Inference);
        for layer in 0..8 {
            let pop = popularity(&batch, layer);
            let total: f64 = pop.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(pop.iter().all(|&p| (0.0..=1.0).contains(&p)));
            let routing = batch.routing_for_layer(layer);
            prop_assert_eq!(routing.total(), batch.len());
        }
    }

    /// The pattern ratio is a proper fraction and grows with k.
    #[test]
    fn pattern_ratio_is_fraction_monotone_in_k(seed in any::<u64>()) {
        let spec = WorkloadSpec::enwik8(16, 8);
        let mut src = TokenSource::new(&spec, 1, seed);
        let batch = src.sample_batch(8, 512, Mode::Inference);
        for layer in 0..7 {
            let mut last = 0.0;
            for k in 1..=4 {
                let r = pattern_ratio(&batch, layer, k);
                prop_assert!((0.0..=1.0).contains(&r));
                prop_assert!(r + 1e-12 >= last, "ratio fell as k grew");
                last = r;
            }
        }
    }

    /// Determinism: the same seed reproduces the same batch; different
    /// modes from the same source differ.
    #[test]
    fn seeded_reproducibility(seed in any::<u64>()) {
        let spec = WorkloadSpec::imdb(8, 6);
        let mut a = TokenSource::new(&spec, 1, seed);
        let mut b = TokenSource::new(&spec, 1, seed);
        let ba = a.sample_batch(4, 64, Mode::Inference);
        let bb = b.sample_batch(4, 64, Mode::Inference);
        prop_assert_eq!(ba.tokens, bb.tokens);
    }
}
