//! Statistical analyses of token workloads.
//!
//! These functions compute the empirical quantities the paper's
//! motivation section reports: per-layer expert popularity (Figure 6,
//! Table 2) and the cross-layer expert-selection pattern ratio
//! (Figure 9).

use std::collections::BTreeMap;

use crate::tokens::TokenBatch;

/// Normalized expert popularity at a layer: fraction of primary
/// selections landing on each expert.
pub fn popularity(batch: &TokenBatch, layer: usize) -> Vec<f64> {
    let mut counts = vec![0usize; batch.experts];
    for tok in &batch.tokens {
        counts[tok.primary(layer) as usize] += 1;
    }
    let total = batch.tokens.len().max(1) as f64;
    counts.into_iter().map(|c| c as f64 / total).collect()
}

/// Max/min popularity ratio at a layer (Figure 6's skew measure).
/// Returns `f64::INFINITY` when some expert receives nothing.
pub fn popularity_skew(batch: &TokenBatch, layer: usize) -> f64 {
    let pop = popularity(batch, layer);
    let max = pop.iter().copied().fold(0.0, f64::max);
    let min = pop.iter().copied().fold(f64::INFINITY, f64::min);
    if min <= 0.0 {
        f64::INFINITY
    } else {
        max / min
    }
}

/// The `n` most popular experts at a layer, most popular first
/// (Table 2's rows).
pub fn top_experts(batch: &TokenBatch, layer: usize, n: usize) -> Vec<usize> {
    let pop = popularity(batch, layer);
    let mut idx: Vec<usize> = (0..pop.len()).collect();
    idx.sort_by(|&a, &b| pop[b].partial_cmp(&pop[a]).expect("finite").then(a.cmp(&b)));
    idx.truncate(n);
    idx
}

/// Figure 9's pattern ratio: among tokens that selected the same expert
/// at `layer`, the fraction whose `layer + 1` primary selection falls in
/// their group's locally ranked top-k. Token-weighted across groups;
/// returns 0 for an empty batch or the last layer.
pub fn pattern_ratio(batch: &TokenBatch, layer: usize, k: usize) -> f64 {
    if batch.tokens.is_empty() || layer + 1 >= batch.tokens[0].selections.len() {
        return 0.0;
    }
    // Group tokens by primary expert at `layer`.
    let mut groups: BTreeMap<u16, Vec<u16>> = BTreeMap::new();
    for tok in &batch.tokens {
        groups
            .entry(tok.primary(layer))
            .or_default()
            .push(tok.primary(layer + 1));
    }
    let mut matched = 0usize;
    let mut total = 0usize;
    for next in groups.values() {
        // Rank next-layer experts within the group.
        let mut counts: BTreeMap<u16, usize> = BTreeMap::new();
        for &e in next {
            *counts.entry(e).or_insert(0) += 1;
        }
        let mut ranked: Vec<(u16, usize)> = counts.into_iter().collect();
        ranked.sort_by_key(|&(e, c)| (std::cmp::Reverse(c), e));
        let topk: Vec<u16> = ranked.iter().take(k).map(|&(e, _)| e).collect();
        matched += next.iter().filter(|e| topk.contains(e)).count();
        total += next.len();
    }
    if total == 0 {
        0.0
    } else {
        matched as f64 / total as f64
    }
}

/// Mean pattern ratio over all adjacent layer pairs of the model.
pub fn mean_pattern_ratio(batch: &TokenBatch, k: usize) -> f64 {
    if batch.tokens.is_empty() {
        return 0.0;
    }
    let layers = batch.tokens[0].selections.len();
    if layers < 2 {
        return 0.0;
    }
    let sum: f64 = (0..layers - 1).map(|l| pattern_ratio(batch, l, k)).sum();
    sum / (layers - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gating::Mode;
    use crate::spec::WorkloadSpec;
    use crate::tokens::{TokenPath, TokenSource};

    fn batch(mode: Mode) -> TokenBatch {
        let mut s = TokenSource::new(&WorkloadSpec::enwik8(16, 12), 1, 42);
        s.sample_batch(16, 512, mode)
    }

    #[test]
    fn popularity_sums_to_one() {
        let b = batch(Mode::Inference);
        for layer in 0..12 {
            let pop = popularity(&b, layer);
            let total: f64 = pop.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "layer {layer}: {total}");
        }
    }

    #[test]
    fn inference_more_skewed_than_training() {
        let bt = batch(Mode::Train);
        let bi = batch(Mode::Inference);
        let st = popularity_skew(&bt, 6);
        let si = popularity_skew(&bi, 6);
        assert!(si > st * 1.5, "train skew {st}, inference skew {si}");
    }

    #[test]
    fn inference_skew_in_paper_range() {
        // Paper: most popular expert gets 4.02x (4-expert) to 5.56x
        // (16-expert) the least popular one.
        let b = batch(Mode::Inference);
        let mean_skew: f64 = (0..12).map(|l| popularity_skew(&b, l)).sum::<f64>() / 12.0;
        assert!(
            (2.0..12.0).contains(&mean_skew),
            "mean inference skew {mean_skew} out of plausible range"
        );
    }

    #[test]
    fn top_experts_differ_across_layers() {
        let b = batch(Mode::Inference);
        let t4: Vec<Vec<usize>> = (0..12).map(|l| top_experts(&b, l, 4)).collect();
        // Table 2: layers have (mostly) different top-4 sets.
        let distinct: std::collections::BTreeSet<&Vec<usize>> = t4.iter().collect();
        assert!(
            distinct.len() >= 8,
            "only {} distinct top-4 sets",
            distinct.len()
        );
    }

    #[test]
    fn pattern_ratio_in_paper_range() {
        // Paper: ~41.9% at k=1, ~54.6% at k=2, increasing with k.
        let b = batch(Mode::Inference);
        let r1 = mean_pattern_ratio(&b, 1);
        let r2 = mean_pattern_ratio(&b, 2);
        let r3 = mean_pattern_ratio(&b, 3);
        assert!((0.3..0.6).contains(&r1), "k=1 ratio {r1}");
        assert!(r2 > r1, "k=2 {r2} not above k=1 {r1}");
        assert!(r3 > r2, "k=3 {r3} not above k=2 {r2}");
    }

    #[test]
    fn pattern_ratio_deeper_layers_higher() {
        let b = batch(Mode::Inference);
        let early: f64 = (0..4).map(|l| pattern_ratio(&b, l, 1)).sum::<f64>() / 4.0;
        let late: f64 = (7..11).map(|l| pattern_ratio(&b, l, 1)).sum::<f64>() / 4.0;
        assert!(late > early, "late {late} <= early {early}");
    }

    #[test]
    fn pattern_ratio_handles_degenerate_input() {
        let empty = TokenBatch {
            tokens: vec![],
            devices: 1,
            experts: 4,
        };
        assert_eq!(pattern_ratio(&empty, 0, 1), 0.0);
        let single_layer = TokenBatch {
            tokens: vec![TokenPath {
                class: 0,
                selections: vec![vec![0]],
            }],
            devices: 1,
            experts: 4,
        };
        assert_eq!(pattern_ratio(&single_layer, 0, 1), 0.0);
        assert_eq!(mean_pattern_ratio(&single_layer, 1), 0.0);
    }

    #[test]
    fn perfectly_persistent_tokens_have_ratio_one() {
        // All tokens pick expert (class % 4) at every layer: groups are
        // pure, so the ratio is 1 at any k.
        let tokens: Vec<TokenPath> = (0..64)
            .map(|i| TokenPath {
                class: i,
                selections: vec![vec![(i % 4) as u16]; 3],
            })
            .collect();
        let b = TokenBatch {
            tokens,
            devices: 1,
            experts: 4,
        };
        assert!((pattern_ratio(&b, 0, 1) - 1.0).abs() < 1e-12);
    }
}
