//! Token streams and batches.
//!
//! A [`TokenSource`] draws tokens (latent class + full per-layer expert
//! selections) from a [`GatingModel`] under a training or inference
//! class distribution. Batches carry enough structure for both sides of
//! the evaluation: per-layer [`LayerRouting`] matrices for the execution
//! engine and per-token sample paths for Lina's popularity estimator.

use lina_simcore::{Rng, Zipf};

use lina_model::LayerRouting;

use crate::gating::{GatingModel, Mode};
use crate::spec::WorkloadSpec;

/// One token's trajectory through the model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TokenPath {
    /// Latent semantic class (not visible to schedulers; only the
    /// generator and tests may look at it).
    pub class: usize,
    /// `selections[layer]` = the gate's top-k experts, primary first.
    pub selections: Vec<Vec<u16>>,
}

impl TokenPath {
    /// The primary (top-1) expert at a layer.
    pub fn primary(&self, layer: usize) -> u16 {
        self.selections[layer][0]
    }

    /// The expert-id path suffix `(layer - l + 1 ..= layer)` of primary
    /// selections, used as the estimator's sample-path key.
    pub fn path_suffix(&self, layer: usize, l: usize) -> Vec<u16> {
        let start = (layer + 1).saturating_sub(l);
        (start..=layer).map(|i| self.primary(i)).collect()
    }
}

/// A batch of tokens spread across devices.
#[derive(Clone, Debug)]
pub struct TokenBatch {
    /// Tokens in batch order.
    pub tokens: Vec<TokenPath>,
    /// Number of devices the batch is sharded over (contiguous blocks).
    pub devices: usize,
    /// Experts per layer.
    pub experts: usize,
}

impl TokenBatch {
    /// Tokens homed on device `d`.
    pub fn tokens_on(&self, d: usize) -> &[TokenPath] {
        let per = self.tokens.len() / self.devices;
        let start = d * per;
        let end = if d + 1 == self.devices {
            self.tokens.len()
        } else {
            start + per
        };
        &self.tokens[start..end]
    }

    /// Device homing token index `t`.
    pub fn device_of(&self, t: usize) -> usize {
        let per = self.tokens.len() / self.devices;
        (t / per).min(self.devices - 1)
    }

    /// The routing matrix of one layer: counts of (token, selection)
    /// pairs from each device to each expert.
    pub fn routing_for_layer(&self, layer: usize) -> LayerRouting {
        let mut routing = LayerRouting::empty(self.devices, self.experts);
        for d in 0..self.devices {
            for tok in self.tokens_on(d) {
                for &e in &tok.selections[layer] {
                    routing.counts[d][e as usize] += 1;
                }
            }
        }
        routing
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// Draws token batches for a workload.
///
/// # Examples
///
/// ```
/// use lina_workload::{Mode, TokenSource, WorkloadSpec};
///
/// let spec = WorkloadSpec::enwik8(16, 12);
/// let mut source = TokenSource::new(&spec, 1, 42);
/// let batch = source.sample_batch(16, 64, Mode::Inference);
/// assert_eq!(batch.len(), 16 * 64);
/// let routing = batch.routing_for_layer(0);
/// assert_eq!(routing.total(), batch.len());
/// ```
#[derive(Clone, Debug)]
pub struct TokenSource {
    gating: GatingModel,
    class_dist: Zipf,
    top_k: usize,
    rng: Rng,
    /// Popularity-drift rotation: the sampled Zipf *rank* is mapped to
    /// class `(rank + rotation) % classes`, so rotating shifts which
    /// latent classes are currently popular without touching the
    /// trained class-to-expert maps.
    class_rotation: usize,
}

impl TokenSource {
    /// Creates a source for a workload. `top_k` is the gate fan-out
    /// (2 in training, 1 in inference per the paper); `seed` controls
    /// the sampling stream, independent of the model seed.
    pub fn new(spec: &WorkloadSpec, top_k: usize, seed: u64) -> Self {
        let gating = GatingModel::new(spec);
        let class_dist = Zipf::new(spec.classes, spec.inference_class_skew);
        TokenSource {
            gating,
            class_dist,
            top_k,
            rng: Rng::new(seed),
            class_rotation: 0,
        }
    }

    /// The underlying gating model.
    pub fn gating(&self) -> &GatingModel {
        &self.gating
    }

    /// Sets the popularity-drift rotation: inference class ranks map to
    /// class `(rank + rotation) % classes`, so advancing the rotation
    /// makes previously cold classes (and hence their canonical
    /// experts) popular. Training-mode sampling is uniform over classes
    /// and therefore unaffected.
    pub fn set_class_rotation(&mut self, rotation: usize) {
        self.class_rotation = rotation % self.gating.spec().classes;
    }

    /// The current popularity-drift rotation.
    pub fn class_rotation(&self) -> usize {
        self.class_rotation
    }

    /// Maps a sampled popularity rank to a class under the current
    /// rotation.
    fn rank_to_class(&self, rank: usize) -> usize {
        (rank + self.class_rotation) % self.gating.spec().classes
    }

    /// Samples one token's full trajectory.
    pub fn sample_token(&mut self, mode: Mode) -> TokenPath {
        let spec = self.gating.spec().clone();
        let class = match mode {
            Mode::Train => self.rng.index(spec.classes),
            Mode::Inference => {
                let rank = self.class_dist.sample(&mut self.rng);
                self.rank_to_class(rank)
            }
        };
        let selections = (0..spec.layers)
            .map(|layer| {
                self.gating
                    .select(layer, class, self.top_k, mode, &mut self.rng)
            })
            .collect();
        TokenPath { class, selections }
    }

    /// Samples a batch of `tokens_per_device * devices` tokens.
    ///
    /// Inference batches are *bursty*: a few topic classes are boosted
    /// for the whole batch, so expert popularity varies batch to batch
    /// (this is what gives the baseline its heavy tail and makes
    /// unchecked misestimates costly).
    ///
    /// # Panics
    ///
    /// Panics if `devices` or `tokens_per_device` is zero.
    pub fn sample_batch(
        &mut self,
        devices: usize,
        tokens_per_device: usize,
        mode: Mode,
    ) -> TokenBatch {
        assert!(
            devices > 0 && tokens_per_device > 0,
            "sample_batch: empty shape"
        );
        let n = devices * tokens_per_device;
        let spec = self.gating.spec().clone();
        let topics: Vec<usize> = if mode == Mode::Inference && spec.burst_topics > 0 {
            (0..spec.burst_topics)
                .map(|_| {
                    let rank = self.class_dist.sample(&mut self.rng);
                    self.rank_to_class(rank)
                })
                .collect()
        } else {
            Vec::new()
        };
        let tokens = (0..n)
            .map(|_| {
                if !topics.is_empty() && self.rng.bernoulli(spec.burst_strength) {
                    let class = topics[self.rng.index(topics.len())];
                    self.sample_token_of_class(class, mode)
                } else {
                    self.sample_token(mode)
                }
            })
            .collect();
        TokenBatch {
            tokens,
            devices,
            experts: spec.experts,
        }
    }

    /// Samples a token with a fixed latent class.
    pub fn sample_token_of_class(&mut self, class: usize, mode: Mode) -> TokenPath {
        let spec = self.gating.spec().clone();
        let selections = (0..spec.layers)
            .map(|layer| {
                self.gating
                    .select(layer, class, self.top_k, mode, &mut self.rng)
            })
            .collect();
        TokenPath { class, selections }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source() -> TokenSource {
        TokenSource::new(&WorkloadSpec::enwik8(16, 12), 1, 99)
    }

    #[test]
    fn batch_shape_and_sharding() {
        let mut s = source();
        let b = s.sample_batch(4, 128, Mode::Inference);
        assert_eq!(b.len(), 512);
        for d in 0..4 {
            assert_eq!(b.tokens_on(d).len(), 128);
        }
        assert_eq!(b.device_of(0), 0);
        assert_eq!(b.device_of(127), 0);
        assert_eq!(b.device_of(128), 1);
        assert_eq!(b.device_of(511), 3);
    }

    #[test]
    fn routing_conserves_selections() {
        let mut s = TokenSource::new(&WorkloadSpec::enwik8(16, 12), 2, 3);
        let b = s.sample_batch(4, 64, Mode::Train);
        let r = b.routing_for_layer(5);
        // top-2: every token contributes 2 selections.
        assert_eq!(r.total(), 512);
        assert_eq!(r.devices(), 4);
    }

    #[test]
    fn training_routing_is_roughly_balanced() {
        let mut s = TokenSource::new(&WorkloadSpec::enwik8(16, 12), 2, 5);
        let b = s.sample_batch(16, 512, Mode::Train);
        let r = b.routing_for_layer(6);
        let skew = r.skew();
        assert!(skew < 1.5, "training skew {skew}");
    }

    #[test]
    fn inference_routing_is_skewed() {
        let mut s = source();
        let b = s.sample_batch(16, 512, Mode::Inference);
        let r = b.routing_for_layer(6);
        let skew = r.skew();
        assert!(skew > 2.0, "inference skew only {skew}");
    }

    #[test]
    fn paths_and_suffixes() {
        let tok = TokenPath {
            class: 0,
            selections: vec![vec![3], vec![7], vec![1], vec![4]],
        };
        assert_eq!(tok.primary(2), 1);
        assert_eq!(tok.path_suffix(3, 2), vec![1, 4]);
        assert_eq!(tok.path_suffix(3, 10), vec![3, 7, 1, 4]);
        assert_eq!(tok.path_suffix(0, 3), vec![3]);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = source();
        let mut b = source();
        let ba = a.sample_batch(2, 16, Mode::Inference);
        let bb = b.sample_batch(2, 16, Mode::Inference);
        assert_eq!(ba.tokens, bb.tokens);
    }

    #[test]
    fn class_rotation_shifts_popular_classes() {
        let spec = WorkloadSpec::enwik8(16, 12);
        let classes = spec.classes;
        let count_classes = |rotation: usize| {
            let mut s = TokenSource::new(&spec, 1, 77);
            s.set_class_rotation(rotation);
            let b = s.sample_batch(8, 512, Mode::Inference);
            let mut counts = vec![0usize; classes];
            for tok in &b.tokens {
                counts[tok.class] += 1;
            }
            counts
        };
        let base = count_classes(0);
        let rotated = count_classes(classes / 2);
        // The same sampling stream shifted by half the class space: the
        // modal class moves by exactly the rotation.
        let argmax = |c: &[usize]| {
            c.iter()
                .enumerate()
                .max_by_key(|&(_, &v)| v)
                .expect("nonempty")
                .0
        };
        assert_eq!((argmax(&base) + classes / 2) % classes, argmax(&rotated));
        // Training mode is uniform over classes and unaffected in shape.
        let mut s = TokenSource::new(&spec, 1, 77);
        s.set_class_rotation(5);
        assert_eq!(s.class_rotation(), 5);
    }

    #[test]
    fn rotation_wraps_modulo_classes() {
        let spec = WorkloadSpec::enwik8(16, 12);
        let mut s = TokenSource::new(&spec, 1, 7);
        s.set_class_rotation(spec.classes + 3);
        assert_eq!(s.class_rotation(), 3);
    }

    #[test]
    fn different_sampling_seeds_differ() {
        let mut a = TokenSource::new(&WorkloadSpec::enwik8(16, 12), 1, 1);
        let mut b = TokenSource::new(&WorkloadSpec::enwik8(16, 12), 1, 2);
        let ba = a.sample_batch(2, 64, Mode::Inference);
        let bb = b.sample_batch(2, 64, Mode::Inference);
        assert_ne!(ba.tokens, bb.tokens);
    }
}
