//! The "trained gating network" as a generative model.
//!
//! A real MoE gate routes a token from its embedding; the paper observes
//! that this routing is driven by fixed per-token features (part of
//! speech, meaning), which is why tokens that co-selected an expert at
//! layer `i` tend to co-select again at `i+1`. We capture exactly that
//! structure: every token carries a latent class, each layer has a fixed
//! class-to-expert map (the "specialization" the gate learned), and a
//! token follows its class's expert with the layer's persistence
//! probability, otherwise drawing from a layer-wide background
//! distribution.

use lina_simcore::{Rng, Zipf};

use crate::spec::WorkloadSpec;

/// Sampling mode: training data (uniform classes, balanced background —
/// the regime the load-balancing loss produces) or inference requests
/// (skewed classes and background).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Balanced, as during late training.
    Train,
    /// Workload-driven, as during serving.
    Inference,
}

/// The generative gate.
#[derive(Clone, Debug)]
pub struct GatingModel {
    spec: WorkloadSpec,
    /// `sigma[layer][class]` = canonical expert of a class at a layer.
    sigma: Vec<Vec<u16>>,
    /// Per-layer background CDF over experts for inference (a permuted
    /// mild Zipf, so each layer has different residually popular
    /// experts, per Table 2).
    background: Vec<Vec<f64>>,
}

impl GatingModel {
    /// Materializes the "trained" model from a spec (deterministic in
    /// the spec's seed).
    ///
    /// # Panics
    ///
    /// Panics if the spec has zero experts, classes, or layers.
    pub fn new(spec: &WorkloadSpec) -> Self {
        assert!(spec.experts > 0 && spec.classes > 0 && spec.layers > 0);
        let rng = Rng::new(spec.seed);
        let mut sigma: Vec<Vec<u16>> = Vec::with_capacity(spec.layers);
        for layer in 0..spec.layers {
            let mut layer_rng = rng.derive(layer as u64 + 1);
            let assignment = if layer == 0 {
                // Layer 0: classes dealt to experts nearly evenly (the
                // auxiliary loss pushes the gate towards balance) in a
                // random arrangement.
                let mut a: Vec<u16> = (0..spec.classes)
                    .map(|c| (c % spec.experts) as u16)
                    .collect();
                layer_rng.shuffle(&mut a);
                a
            } else {
                // Deeper layers: with probability `map_correlation` a
                // class moves *together with its layer-(l-1) group* to a
                // permuted expert (same features, different specialist);
                // otherwise it is regrouped. Regrouped classes are dealt
                // to the least-loaded experts so each layer stays
                // balanced over training data.
                let mut perm: Vec<u16> = (0..spec.experts as u16).collect();
                layer_rng.shuffle(&mut perm);
                let prev = &sigma[layer - 1];
                let mut a = vec![u16::MAX; spec.classes];
                let mut counts = vec![0usize; spec.experts];
                let mut regrouped = Vec::new();
                for c in 0..spec.classes {
                    if layer_rng.bernoulli(spec.map_correlation) {
                        let e = perm[prev[c] as usize];
                        a[c] = e;
                        counts[e as usize] += 1;
                    } else {
                        regrouped.push(c);
                    }
                }
                layer_rng.shuffle(&mut regrouped);
                let mut expert_order: Vec<usize> = (0..spec.experts).collect();
                layer_rng.shuffle(&mut expert_order);
                for c in regrouped {
                    let &e = expert_order
                        .iter()
                        .min_by_key(|&&e| counts[e])
                        .expect("experts > 0");
                    a[c] = e as u16;
                    counts[e] += 1;
                }
                a
            };
            sigma.push(assignment);
        }
        let mut background = Vec::with_capacity(spec.layers);
        for layer in 0..spec.layers {
            let mut layer_rng = rng.derive(0x1000 + layer as u64);
            // Convert the target max/min ratio to the exponent that
            // achieves it for this expert count.
            let exponent = if spec.experts > 1 {
                spec.background_max_min.max(1.0).ln() / (spec.experts as f64).ln()
            } else {
                0.0
            };
            let zipf = Zipf::new(spec.experts, exponent);
            let mut weights: Vec<f64> = (0..spec.experts).map(|e| zipf.pmf(e)).collect();
            layer_rng.shuffle(&mut weights);
            let mut cdf = Vec::with_capacity(spec.experts);
            let mut acc = 0.0;
            for w in weights {
                acc += w;
                cdf.push(acc);
            }
            let total = *cdf.last().expect("experts > 0");
            for v in &mut cdf {
                *v /= total;
            }
            background.push(cdf);
        }
        GatingModel {
            spec: spec.clone(),
            sigma,
            background,
        }
    }

    /// The spec this model was built from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The canonical expert of `class` at `layer`.
    pub fn canonical_expert(&self, layer: usize, class: usize) -> u16 {
        self.sigma[layer][class]
    }

    fn sample_background(&self, layer: usize, mode: Mode, rng: &mut Rng) -> u16 {
        match mode {
            Mode::Train => rng.index(self.spec.experts) as u16,
            Mode::Inference => {
                let u = rng.f64();
                let cdf = &self.background[layer];
                cdf.partition_point(|&c| c <= u).min(self.spec.experts - 1) as u16
            }
        }
    }

    /// Samples the gate's top-k selection for a token of `class` at
    /// `layer`. The first expert is the class's canonical expert with
    /// the layer's persistence probability; remaining slots are distinct
    /// background draws.
    ///
    /// # Panics
    ///
    /// Panics if `top_k` is zero or exceeds the expert count.
    pub fn select(
        &self,
        layer: usize,
        class: usize,
        top_k: usize,
        mode: Mode,
        rng: &mut Rng,
    ) -> Vec<u16> {
        assert!(
            top_k >= 1 && top_k <= self.spec.experts,
            "select: bad top_k {top_k}"
        );
        let mut chosen = Vec::with_capacity(top_k);
        let primary = if rng.bernoulli(self.spec.persistence(layer)) {
            self.sigma[layer][class]
        } else {
            self.sample_background(layer, mode, rng)
        };
        chosen.push(primary);
        while chosen.len() < top_k {
            let e = self.sample_background(layer, mode, rng);
            if !chosen.contains(&e) {
                chosen.push(e);
            }
        }
        chosen
    }

    /// The exact marginal expert distribution at a layer given a class
    /// distribution (used by tests and the Ideal benchmark).
    pub fn marginal_popularity(&self, layer: usize, class_probs: &[f64], mode: Mode) -> Vec<f64> {
        let e = self.spec.experts;
        let p = self.spec.persistence(layer);
        let mut pop = vec![0.0; e];
        for (c, &pc) in class_probs.iter().enumerate() {
            pop[self.sigma[layer][c] as usize] += pc * p;
        }
        match mode {
            Mode::Train => {
                for v in pop.iter_mut() {
                    *v += (1.0 - p) / e as f64;
                }
            }
            Mode::Inference => {
                let cdf = &self.background[layer];
                let mut prev = 0.0;
                for (i, &c) in cdf.iter().enumerate() {
                    pop[i] += (1.0 - p) * (c - prev);
                    prev = c;
                }
            }
        }
        pop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> GatingModel {
        GatingModel::new(&WorkloadSpec::enwik8(16, 12))
    }

    #[test]
    fn deterministic_in_seed() {
        let a = model();
        let b = model();
        let classes = a.spec().classes;
        for layer in 0..12 {
            for class in 0..classes {
                assert_eq!(
                    a.canonical_expert(layer, class),
                    b.canonical_expert(layer, class)
                );
            }
        }
    }

    #[test]
    fn layers_specialize_differently() {
        let m = model();
        let classes = m.spec().classes;
        let same = (0..classes)
            .filter(|&c| m.canonical_expert(0, c) == m.canonical_expert(1, c))
            .count();
        // Rearrangement: well under all classes coincide.
        assert!(
            same < classes / 2,
            "layers 0 and 1 identical for {same}/{classes}"
        );
    }

    #[test]
    fn class_assignment_is_balanced_per_layer() {
        let m = model();
        let classes = m.spec().classes;
        let experts = m.spec().experts;
        let per = classes / experts;
        for layer in 0..12 {
            let mut counts = vec![0usize; experts];
            for c in 0..classes {
                counts[m.canonical_expert(layer, c) as usize] += 1;
            }
            // Layer 0 is dealt exactly evenly; deeper layers keep
            // correlated groups and rebalance via regrouped classes, so
            // allow small deviations.
            let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            if layer == 0 {
                assert_eq!((*min, *max), (per, per), "layer 0 counts {counts:?}");
            } else {
                assert!(max - min <= per + 2, "layer {layer} counts {counts:?}");
            }
        }
    }

    #[test]
    fn groups_move_together_across_layers() {
        // With map_correlation, classes sharing an expert at layer i
        // share one again at layer i+1 far more often than chance.
        let m = model();
        let classes = m.spec().classes;
        let mut together = 0usize;
        let mut total = 0usize;
        for layer in 0..11 {
            for a in 0..classes {
                for b in (a + 1)..classes {
                    if m.canonical_expert(layer, a) == m.canonical_expert(layer, b) {
                        total += 1;
                        if m.canonical_expert(layer + 1, a) == m.canonical_expert(layer + 1, b) {
                            together += 1;
                        }
                    }
                }
            }
        }
        let rate = together as f64 / total as f64;
        let chance = 1.0 / m.spec().experts as f64;
        assert!(
            rate > 2.0 * chance,
            "group cohesion {rate} vs chance {chance}"
        );
    }

    #[test]
    fn select_returns_distinct_topk() {
        let m = model();
        let mut rng = Rng::new(5);
        for _ in 0..1000 {
            let sel = m.select(3, 10, 2, Mode::Inference, &mut rng);
            assert_eq!(sel.len(), 2);
            assert_ne!(sel[0], sel[1]);
            assert!(sel.iter().all(|&e| (e as usize) < 16));
        }
    }

    #[test]
    fn persistence_drives_canonical_selection() {
        let m = model();
        let mut rng = Rng::new(7);
        let layer = 11;
        let class = 20;
        let canon = m.canonical_expert(layer, class);
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| m.select(layer, class, 1, Mode::Inference, &mut rng)[0] == canon)
            .count();
        let p = m.spec().persistence(layer);
        let rate = hits as f64 / n as f64;
        // Canonical selected with at least the persistence probability
        // (background can also land on it).
        assert!(rate >= p - 0.02, "rate {rate} < persistence {p}");
        assert!(rate <= p + 0.12, "rate {rate} implausibly high vs {p}");
    }

    #[test]
    fn train_marginal_is_nearly_uniform() {
        let m = model();
        let classes = m.spec().classes;
        let uniform = vec![1.0 / classes as f64; classes];
        let pop = m.marginal_popularity(6, &uniform, Mode::Train);
        let total: f64 = pop.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        let max = pop.iter().copied().fold(0.0, f64::max);
        let min = pop.iter().copied().fold(1.0, f64::min);
        assert!(max / min < 1.4, "training popularity skewed: {}", max / min);
    }

    #[test]
    fn inference_marginal_is_skewed_under_zipf_classes() {
        let m = model();
        let classes = m.spec().classes;
        let zipf = Zipf::new(classes, m.spec().inference_class_skew);
        let class_probs: Vec<f64> = (0..classes).map(|c| zipf.pmf(c)).collect();
        let pop = m.marginal_popularity(6, &class_probs, Mode::Inference);
        let max = pop.iter().copied().fold(0.0, f64::max);
        let min = pop.iter().copied().fold(1.0, f64::min);
        assert!(
            max / min > 2.0,
            "inference popularity not skewed enough: {:.2}",
            max / min
        );
    }

    #[test]
    #[should_panic(expected = "bad top_k")]
    fn zero_topk_panics() {
        let m = model();
        let mut rng = Rng::new(1);
        m.select(0, 0, 0, Mode::Train, &mut rng);
    }
}
