//! Inter-layer expert-affinity statistics.
//!
//! The generative gating model routes a token class through a
//! depth-persistent chain of experts: with probability
//! [`WorkloadSpec::map_correlation`](crate::WorkloadSpec) a class's
//! layer-`l` expert group moves *together* to its layer-`l+1` group, so
//! consecutive layers' selections are correlated. [`AffinityStats`]
//! measures that correlation directly from served token paths: for
//! every adjacent layer pair it counts how often expert `e` at layer
//! `l` is followed by expert `f` at layer `l+1` on the same token (the
//! top-1 selection — the copy that could physically stay resident on
//! the expert's device). The counts feed the affinity-aware placer in
//! `lina-baselines`, which co-locates high-affinity chains so the
//! inter-layer all-to-all becomes a local handoff.

use crate::tokens::{TokenBatch, TokenPath};

/// Per-layer-pair expert co-selection counts harvested from token
/// paths.
#[derive(Clone, Debug, PartialEq)]
pub struct AffinityStats {
    experts: usize,
    /// `counts[l][e][f]` = tokens whose primary expert was `e` at layer
    /// `l` and `f` at layer `l + 1`.
    counts: Vec<Vec<Vec<u64>>>,
}

impl AffinityStats {
    /// An empty collector for a model with `layers` MoE layers of
    /// `experts` experts each (`layers - 1` adjacent pairs).
    ///
    /// # Panics
    ///
    /// Panics on a zero-layer or zero-expert shape.
    pub fn new(layers: usize, experts: usize) -> Self {
        assert!(layers > 0, "AffinityStats: zero layers");
        assert!(experts > 0, "AffinityStats: zero experts");
        AffinityStats {
            experts,
            counts: vec![vec![vec![0; experts]; experts]; layers.saturating_sub(1)],
        }
    }

    /// Number of adjacent layer pairs tracked (`layers - 1`).
    pub fn hops(&self) -> usize {
        self.counts.len()
    }

    /// Experts per layer.
    pub fn experts(&self) -> usize {
        self.experts
    }

    /// Folds one token's primary-expert path into the counts. Paths
    /// shorter than the tracked depth contribute only the pairs they
    /// cover.
    pub fn record_path(&mut self, path: &TokenPath) {
        let depth = path.selections.len().min(self.counts.len() + 1);
        for l in 0..depth.saturating_sub(1) {
            let e = path.primary(l) as usize;
            let f = path.primary(l + 1) as usize;
            self.counts[l][e][f] += 1;
        }
    }

    /// Folds every token of a batch.
    pub fn record_batch(&mut self, batch: &TokenBatch) {
        for path in &batch.tokens {
            self.record_path(path);
        }
    }

    /// Builds the statistics from a profiling corpus in one call.
    pub fn from_batches(batches: &[TokenBatch], layers: usize, experts: usize) -> Self {
        let mut stats = Self::new(layers, experts);
        for b in batches {
            stats.record_batch(b);
        }
        stats
    }

    /// The co-selection count matrix for the `hop`-th adjacent pair
    /// (`counts[e][f]` = layer-`hop` expert `e` followed by layer-
    /// `hop + 1` expert `f`).
    pub fn pair_counts(&self, hop: usize) -> &[Vec<u64>] {
        &self.counts[hop]
    }

    /// Affinity strength of one hop: the excess probability mass the
    /// modal *conditional* successor carries over the modal *marginal*
    /// successor,
    /// `sum_e P(e) * max_f P(f | e)  -  max_f P(f)`.
    ///
    /// Under independent layers the conditional distribution equals the
    /// marginal for every predecessor, so the score collapses to ~0
    /// (small positive sampling bias aside); a deterministic
    /// `e -> f` chain scores `1 - max_f P(f)`.
    pub fn hop_score(&self, hop: usize) -> f64 {
        let m = &self.counts[hop];
        let total: u64 = m.iter().flatten().sum();
        if total == 0 {
            return 0.0;
        }
        let conditional: u64 = m
            .iter()
            .map(|row| row.iter().copied().max().unwrap_or(0))
            .sum();
        let marginal = (0..self.experts)
            .map(|f| m.iter().map(|row| row[f]).sum::<u64>())
            .max()
            .unwrap_or(0);
        (conditional as f64 - marginal as f64) / total as f64
    }

    /// Mean [`hop_score`](Self::hop_score) over every recorded hop —
    /// the scalar the property tests sweep against `map_correlation`.
    pub fn affinity_score(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        let sum: f64 = (0..self.hops()).map(|h| self.hop_score(h)).sum();
        sum / self.hops() as f64
    }

    /// Total token-hops recorded.
    pub fn samples(&self) -> u64 {
        self.counts.first().map_or(0, |m| m.iter().flatten().sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(selections: &[u16]) -> TokenPath {
        TokenPath {
            class: 0,
            selections: selections.iter().map(|&e| vec![e]).collect(),
        }
    }

    #[test]
    fn counts_follow_primary_pairs() {
        let mut s = AffinityStats::new(3, 4);
        s.record_path(&path(&[0, 1, 2]));
        s.record_path(&path(&[0, 1, 3]));
        assert_eq!(s.hops(), 2);
        assert_eq!(s.pair_counts(0)[0][1], 2);
        assert_eq!(s.pair_counts(1)[1][2], 1);
        assert_eq!(s.pair_counts(1)[1][3], 1);
        assert_eq!(s.samples(), 2);
    }

    #[test]
    fn deterministic_chain_scores_high_independent_scores_zero() {
        let mut chain = AffinityStats::new(2, 4);
        for e in 0..4u16 {
            for _ in 0..25 {
                chain.record_path(&path(&[e, (e + 1) % 4]));
            }
        }
        // Deterministic successor: conditional mass 1, marginal 1/4.
        assert!((chain.affinity_score() - 0.75).abs() < 1e-12);

        let mut indep = AffinityStats::new(2, 4);
        for e in 0..4u16 {
            for f in 0..4u16 {
                for _ in 0..25 {
                    indep.record_path(&path(&[e, f]));
                }
            }
        }
        assert_eq!(indep.affinity_score(), 0.0);
    }

    #[test]
    fn short_paths_only_cover_their_hops() {
        let mut s = AffinityStats::new(4, 2);
        s.record_path(&path(&[0, 1]));
        assert_eq!(s.pair_counts(0)[0][1], 1);
        assert_eq!(s.pair_counts(1).iter().flatten().sum::<u64>(), 0);
        assert_eq!(s.pair_counts(2).iter().flatten().sum::<u64>(), 0);
    }

    #[test]
    fn single_layer_model_has_no_hops() {
        let s = AffinityStats::new(1, 4);
        assert_eq!(s.hops(), 0);
        assert_eq!(s.affinity_score(), 0.0);
    }
}
