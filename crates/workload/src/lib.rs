//! # lina-workload
//!
//! Synthetic token workloads with the two statistical properties the
//! paper's inference analysis rests on: skewed, layer-specific expert
//! popularity in inference (near-uniform in training), and a
//! cross-layer expert-selection pattern whose strength grows with
//! depth. Includes the generative gating model, token/batch sampling,
//! dataset presets, and the pattern/popularity analyses of Figures 6
//! and 9 and Table 2.

#![warn(missing_docs)]

pub mod affinity;
pub mod gating;
pub mod patterns;
pub mod spec;
pub mod tokens;

pub use affinity::AffinityStats;
pub use gating::{GatingModel, Mode};
pub use patterns::{mean_pattern_ratio, pattern_ratio, popularity, popularity_skew, top_experts};
pub use spec::WorkloadSpec;
pub use tokens::{TokenBatch, TokenPath, TokenSource};
