//! Workload specifications and dataset presets.
//!
//! The paper's inference workloads are real request streams (Enwik8 text
//! generation, WMT translation, IMDB/Twitter sentiment). We replace them
//! with a generative model whose two tunables reproduce the statistical
//! properties every inference result rests on:
//!
//! * a Zipf distribution over latent *semantic classes* of tokens, which
//!   produces the skewed expert popularity of Figure 6 (training uses a
//!   uniform class distribution, matching the balanced popularity the
//!   auxiliary loss produces);
//! * per-layer *persistence* — the probability that a token follows its
//!   class's canonical expert rather than a background draw — which
//!   produces the cross-layer selection pattern of Figure 9 and rises
//!   with depth like the paper observes.

/// Parameters of a synthetic token workload.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Dataset label, e.g. `"enwik8"`.
    pub name: String,
    /// Number of latent semantic classes (more classes = smoother
    /// popularity).
    pub classes: usize,
    /// Experts per MoE layer.
    pub experts: usize,
    /// MoE layers in the model.
    pub layers: usize,
    /// Zipf exponent of the *inference* class distribution. Zero makes
    /// inference as balanced as training.
    pub inference_class_skew: f64,
    /// Persistence at layer 0: probability a token selects its class's
    /// canonical expert.
    pub persistence_base: f64,
    /// Additional persistence per layer (deeper layers are more
    /// specialized, per Figure 9).
    pub persistence_slope: f64,
    /// Target max/min ratio of the per-layer background expert
    /// distribution in inference (residual skew not explained by
    /// classes). Converted internally to a Zipf exponent for the
    /// layer's expert count, so the skew is comparable across widths.
    pub background_max_min: f64,
    /// Probability a class keeps its grouping from one layer to the
    /// next (classes that share an expert at layer `i` move together to
    /// a — possibly different — expert at `i+1`). This is what gives
    /// sample paths predictive power.
    pub map_correlation: f64,
    /// Number of "topic" classes boosted per inference batch (request
    /// streams are bursty: consecutive requests share subject matter).
    pub burst_topics: usize,
    /// Fraction of inference tokens drawn from the batch's topics
    /// instead of the global class distribution.
    pub burst_strength: f64,
    /// Seed identifying the "trained model" (class-to-expert maps).
    pub seed: u64,
}

impl WorkloadSpec {
    /// Persistence at a layer, clamped to `[0, 0.97]`.
    pub fn persistence(&self, layer: usize) -> f64 {
        (self.persistence_base + self.persistence_slope * layer as f64).clamp(0.0, 0.97)
    }

    /// Enwik8 text generation (Transformer-XL's inference task).
    pub fn enwik8(experts: usize, layers: usize) -> Self {
        WorkloadSpec {
            name: "enwik8".into(),
            classes: if experts > 8 {
                2 * experts
            } else {
                experts + 2
            },
            experts,
            layers,
            inference_class_skew: 0.8,
            persistence_base: 0.52,
            persistence_slope: 0.025,
            background_max_min: 4.0,
            map_correlation: 0.4,
            burst_topics: 2,
            burst_strength: 0.4,
            seed: 0xE1_1908,
        }
    }

    /// WMT English-German translation (BERT-Large's inference task).
    pub fn wmt_en_de(experts: usize, layers: usize) -> Self {
        WorkloadSpec {
            name: "wmt-en-de".into(),
            classes: if experts > 8 {
                2 * experts + 4
            } else {
                experts + 2
            },
            experts,
            layers,
            inference_class_skew: 0.75,
            persistence_base: 0.5,
            persistence_slope: 0.025,
            background_max_min: 4.0,
            map_correlation: 0.4,
            burst_topics: 2,
            burst_strength: 0.4,
            seed: 0x37_A1DE,
        }
    }

    /// IMDB reviews sentiment analysis (Table 6).
    pub fn imdb(experts: usize, layers: usize) -> Self {
        WorkloadSpec {
            name: "imdb".into(),
            classes: if experts > 8 {
                2 * experts
            } else {
                experts + 2
            },
            experts,
            layers,
            inference_class_skew: 0.85,
            persistence_base: 0.54,
            persistence_slope: 0.022,
            background_max_min: 4.5,
            map_correlation: 0.38,
            burst_topics: 2,
            burst_strength: 0.42,
            seed: 0x1_4DB,
        }
    }

    /// Twitter sentiment analysis (Table 6).
    pub fn twitter(experts: usize, layers: usize) -> Self {
        WorkloadSpec {
            name: "twitter".into(),
            classes: if experts > 8 {
                2 * experts - 4
            } else {
                experts + 2
            },
            experts,
            layers,
            inference_class_skew: 0.9,
            persistence_base: 0.5,
            persistence_slope: 0.022,
            background_max_min: 5.0,
            map_correlation: 0.42,
            burst_topics: 2,
            burst_strength: 0.45,
            seed: 0x781_77E4,
        }
    }

    /// WMT French-English translation (Table 6).
    pub fn wmt_fr(experts: usize, layers: usize) -> Self {
        WorkloadSpec {
            name: "wmt-fr".into(),
            classes: if experts > 8 {
                2 * experts + 4
            } else {
                experts + 2
            },
            experts,
            layers,
            inference_class_skew: 0.7,
            persistence_base: 0.55,
            persistence_slope: 0.025,
            background_max_min: 3.5,
            map_correlation: 0.35,
            burst_topics: 2,
            burst_strength: 0.35,
            seed: 0xF4_ED,
        }
    }

    /// WMT Russian-English translation (Table 6).
    pub fn wmt_ru(experts: usize, layers: usize) -> Self {
        WorkloadSpec {
            name: "wmt-ru".into(),
            classes: if experts > 8 {
                2 * experts + 4
            } else {
                experts + 2
            },
            experts,
            layers,
            inference_class_skew: 0.75,
            persistence_base: 0.51,
            persistence_slope: 0.025,
            background_max_min: 4.0,
            map_correlation: 0.4,
            burst_topics: 2,
            burst_strength: 0.4,
            seed: 0x16_55_1A,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persistence_increases_with_depth_and_clamps() {
        let spec = WorkloadSpec::enwik8(16, 12);
        assert!(spec.persistence(5) > spec.persistence(0));
        let mut extreme = spec;
        extreme.persistence_base = 0.9;
        extreme.persistence_slope = 0.2;
        assert!(extreme.persistence(11) <= 0.97);
    }

    #[test]
    fn presets_are_distinct() {
        let specs = [
            WorkloadSpec::enwik8(16, 12),
            WorkloadSpec::wmt_en_de(16, 12),
            WorkloadSpec::imdb(16, 12),
            WorkloadSpec::twitter(16, 12),
            WorkloadSpec::wmt_fr(16, 12),
            WorkloadSpec::wmt_ru(16, 12),
        ];
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len());
        let mut seeds: Vec<u64> = specs.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), specs.len());
    }

    #[test]
    fn presets_respect_requested_shape() {
        let s = WorkloadSpec::wmt_en_de(8, 24);
        assert_eq!(s.experts, 8);
        assert_eq!(s.layers, 24);
    }
}
