//! # lina-model
//!
//! MoE Transformer model descriptions and execution planning: the
//! paper's model presets with parameter accounting, an analytic A100
//! cost model, token-routing and expert-placement structures, and the
//! compiler from a training step to an op graph that the runner
//! executes over the simulated cluster.

#![warn(missing_docs)]

pub mod config;
pub mod cost;
pub mod graph;
pub mod passes;
pub mod routing;

pub use config::{BatchShape, ModelKind, MoeModelConfig};
pub use cost::{CostModel, DeviceSpec};
pub use graph::{CommClass, CommMeta, Op, OpGraph, OpId, OpKind};
pub use passes::{balanced_routing, build_train_step, A2aChunking, GradCommMode, TrainStepOptions};
pub use routing::{assign_replicas, DispatchPlan, ExpertPlacement, LayerRouting, LayeredPlacement};
