//! Token routing and expert placement.
//!
//! [`LayerRouting`] summarizes the gate's decision for one MoE layer:
//! how many token-selections each device routes to each expert.
//! [`ExpertPlacement`] describes which devices host (replicas of) which
//! experts — one-per-device in the baseline, packed/replicated under
//! Lina. [`assign_replicas`] turns a routing plus a placement into the
//! actual all-to-all transfer matrix and per-device expert compute load,
//! preferring local replicas exactly like Lina's coordinated all-to-all.

// Expert/device indices address several parallel matrices at once;
// zipped iterators would obscure that.
#![allow(clippy::needless_range_loop)]

use lina_netsim::{DeviceId, Topology};

/// Per-layer token-to-expert assignment counts.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerRouting {
    /// Number of experts in the layer.
    pub experts: usize,
    /// `counts[d][e]` = token-selections device `d` routes to expert `e`.
    pub counts: Vec<Vec<usize>>,
}

impl LayerRouting {
    /// Creates an empty routing for `devices` devices and `experts`
    /// experts.
    pub fn empty(devices: usize, experts: usize) -> Self {
        LayerRouting {
            experts,
            counts: vec![vec![0; experts]; devices],
        }
    }

    /// A perfectly balanced routing: each device spreads
    /// `tokens_per_device * top_k` selections evenly over all experts
    /// (what the load-balancing loss drives training towards, and what
    /// the paper's "Ideal" inference benchmark forces).
    pub fn balanced(
        devices: usize,
        experts: usize,
        tokens_per_device: usize,
        top_k: usize,
    ) -> Self {
        let total = tokens_per_device * top_k;
        let base = total / experts;
        let rem = total % experts;
        let counts = (0..devices)
            .map(|_| (0..experts).map(|e| base + usize::from(e < rem)).collect())
            .collect();
        LayerRouting { experts, counts }
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.counts.len()
    }

    /// Total selections routed to expert `e` across all devices.
    pub fn tokens_to_expert(&self, e: usize) -> usize {
        self.counts.iter().map(|row| row[e]).sum()
    }

    /// Total selections leaving device `d`.
    pub fn tokens_from_device(&self, d: usize) -> usize {
        self.counts[d].iter().sum()
    }

    /// Total selections in the batch.
    pub fn total(&self) -> usize {
        self.counts
            .iter()
            .map(|row| row.iter().sum::<usize>())
            .sum()
    }

    /// Normalized expert popularity (fractions summing to 1; all zeros
    /// if the routing is empty).
    pub fn popularity(&self) -> Vec<f64> {
        let total = self.total() as f64;
        (0..self.experts)
            .map(|e| {
                if total == 0.0 {
                    0.0
                } else {
                    self.tokens_to_expert(e) as f64 / total
                }
            })
            .collect()
    }

    /// Ratio of the most to the least popular expert's token count
    /// (`f64::INFINITY` if some expert receives nothing).
    pub fn skew(&self) -> f64 {
        let max = (0..self.experts)
            .map(|e| self.tokens_to_expert(e))
            .max()
            .unwrap_or(0);
        let min = (0..self.experts)
            .map(|e| self.tokens_to_expert(e))
            .min()
            .unwrap_or(0);
        if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }

    /// Experts ordered by descending popularity (ties by index).
    pub fn ranked_experts(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.experts).collect();
        idx.sort_by_key(|&e| (std::cmp::Reverse(self.tokens_to_expert(e)), e));
        idx
    }
}

/// Which devices host (replicas of) which experts.
#[derive(Clone, Debug, PartialEq)]
pub struct ExpertPlacement {
    /// `hosts[e]` = devices hosting a replica of expert `e`, in order.
    pub hosts: Vec<Vec<DeviceId>>,
    /// `shares[e][r]` = intended fraction of expert `e`'s load handled
    /// by replica `r` (relative weights; they need not sum to 1).
    /// Parallel to `hosts`.
    pub shares: Vec<Vec<f64>>,
}

impl ExpertPlacement {
    /// Builds a placement with equal shares per replica.
    pub fn uniform(hosts: Vec<Vec<DeviceId>>) -> Self {
        let shares = hosts.iter().map(|h| vec![1.0; h.len()]).collect();
        ExpertPlacement { hosts, shares }
    }

    /// The baseline placement: expert `e` lives on device `e`.
    ///
    /// # Panics
    ///
    /// Panics if `experts > devices`.
    pub fn one_per_device(experts: usize, devices: usize) -> Self {
        assert!(
            experts <= devices,
            "one_per_device: more experts than devices"
        );
        Self::uniform((0..experts).map(|e| vec![DeviceId(e as u32)]).collect())
    }

    /// Lina's training-time packing: every device hosts `per_device`
    /// experts, chosen so each node holds a contiguous replica set. When
    /// a node's devices can jointly hold all experts
    /// (`per_device * gpus_per_node >= experts`), every node gets a full
    /// copy and all-to-all becomes intra-node (the paper's 8-expert
    /// case) or disappears entirely (the 2-expert case).
    ///
    /// # Panics
    ///
    /// Panics if `per_device` is zero.
    pub fn packed(experts: usize, topo: &Topology, per_device: usize) -> Self {
        assert!(per_device > 0, "packed: zero experts per device");
        let mut hosts = vec![Vec::new(); experts];
        for d in topo.device_ids() {
            let node = topo.node_of(d).0 as usize;
            let local = topo.local_rank(d);
            let g = topo.spec().gpus_per_node;
            for i in 0..per_device {
                // Walk experts so that consecutive local ranks cover
                // consecutive expert blocks, restarting per node.
                let slot = local * per_device + i;
                let e = (node * g * per_device + slot) % experts;
                if !hosts[e].contains(&d) {
                    hosts[e].push(d);
                }
            }
        }
        Self::uniform(hosts)
    }

    /// Number of experts.
    pub fn experts(&self) -> usize {
        self.hosts.len()
    }

    /// Total replicas across all experts.
    pub fn total_replicas(&self) -> usize {
        self.hosts.iter().map(Vec::len).sum()
    }

    /// Experts hosted on device `d`.
    pub fn experts_on(&self, d: DeviceId) -> Vec<usize> {
        self.hosts
            .iter()
            .enumerate()
            .filter(|(_, hs)| hs.contains(&d))
            .map(|(e, _)| e)
            .collect()
    }

    /// Maximum number of experts hosted by any device.
    pub fn max_per_device(&self, devices: usize) -> usize {
        (0..devices)
            .map(|d| self.experts_on(DeviceId(d as u32)).len())
            .max()
            .unwrap_or(0)
    }

    /// True if every expert has at least one host.
    pub fn is_complete(&self) -> bool {
        self.hosts.iter().all(|hs| !hs.is_empty())
    }

    /// Experts hosted per device (the crowding signal the
    /// deterministic shard-map mutations below break ties on).
    pub fn device_load(&self, devices: usize) -> Vec<usize> {
        let mut load = vec![0usize; devices];
        for hosts in &self.hosts {
            for d in hosts {
                load[d.0 as usize] += 1;
            }
        }
        load
    }

    /// Adds a replica of expert `e` on the least-crowded device not
    /// already hosting it (ties toward the lowest id), respecting the
    /// per-device cap. Returns false when no eligible device exists.
    pub fn add_replica(&mut self, e: usize, devices: usize, cap: usize) -> bool {
        let load = self.device_load(devices);
        let target = (0..devices)
            .filter(|&d| load[d] < cap && !self.hosts[e].contains(&DeviceId(d as u32)))
            .min_by_key(|&d| (load[d], d));
        match target {
            Some(d) => {
                self.hosts[e].push(DeviceId(d as u32));
                self.shares[e].push(1.0);
                true
            }
            None => false,
        }
    }

    /// Drops expert `e`'s replica on its most-crowded host (ties toward
    /// the highest device id); refuses to drop the last replica — an
    /// expert must always stay hosted somewhere or planning would panic.
    pub fn drop_replica(&mut self, e: usize, devices: usize) -> bool {
        if self.hosts[e].len() <= 1 {
            return false;
        }
        let load = self.device_load(devices);
        let idx = self.hosts[e]
            .iter()
            .enumerate()
            .max_by_key(|(_, d)| (load[d.0 as usize], d.0))
            .map(|(idx, _)| idx)
            .expect("multi-replica expert has hosts");
        self.hosts[e].remove(idx);
        self.shares[e].remove(idx);
        true
    }

    /// Moves expert `e` from its most-crowded host to the least-crowded
    /// eligible device, but only when the move strictly reduces
    /// crowding; otherwise a no-op.
    pub fn migrate_replica(&mut self, e: usize, devices: usize, cap: usize) -> bool {
        let load = self.device_load(devices);
        let (idx, src) = match self.hosts[e]
            .iter()
            .enumerate()
            .max_by_key(|(_, d)| (load[d.0 as usize], d.0))
        {
            Some((idx, d)) => (idx, *d),
            None => return false,
        };
        let dst = (0..devices)
            .filter(|&d| load[d] < cap && !self.hosts[e].contains(&DeviceId(d as u32)))
            .min_by_key(|&d| (load[d], d));
        match dst {
            Some(d) if load[d] + 1 < load[src.0 as usize] => {
                self.hosts[e][idx] = DeviceId(d as u32);
                true
            }
            _ => false,
        }
    }
}

/// One [`ExpertPlacement`] per MoE layer.
///
/// Historically a single placement was applied identically to every
/// layer; a `LayeredPlacement` makes the per-layer structure first
/// class so an affinity-aware placer can co-locate experts that are
/// chosen *in sequence* by the same token — the planner then prices
/// each layer's all-to-all against that layer's own map. The
/// [`uniform`](Self::uniform) constructor reproduces the historical
/// behavior bit for bit: every layer shares one map, and planning
/// reduces to exactly the single-map walk.
#[derive(Clone, Debug, PartialEq)]
pub struct LayeredPlacement {
    layers: Vec<ExpertPlacement>,
}

impl LayeredPlacement {
    /// The historical shape: one placement applied to every layer.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`.
    pub fn uniform(placement: ExpertPlacement, layers: usize) -> Self {
        assert!(layers > 0, "LayeredPlacement: zero layers");
        LayeredPlacement {
            layers: vec![placement; layers],
        }
    }

    /// A genuinely per-layer placement.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or the layers disagree on the
    /// expert count.
    pub fn from_layers(layers: Vec<ExpertPlacement>) -> Self {
        assert!(!layers.is_empty(), "LayeredPlacement: zero layers");
        let experts = layers[0].experts();
        assert!(
            layers.iter().all(|p| p.experts() == experts),
            "LayeredPlacement: layers disagree on expert count"
        );
        LayeredPlacement { layers }
    }

    /// The placement for layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn layer(&self, l: usize) -> &ExpertPlacement {
        &self.layers[l]
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Experts per layer.
    pub fn experts(&self) -> usize {
        self.layers[0].experts()
    }

    /// All per-layer placements, in layer order.
    pub fn layers(&self) -> &[ExpertPlacement] {
        &self.layers
    }

    /// Mutable access to every layer's placement (the serving
    /// cluster's re-sharder actuates one action across all layers).
    pub fn layers_mut(&mut self) -> &mut [ExpertPlacement] {
        &mut self.layers
    }

    /// True when every layer shares one identical map (the historical
    /// shape the bit-identity contract pins).
    pub fn is_uniform(&self) -> bool {
        self.layers.windows(2).all(|w| w[0] == w[1])
    }

    /// True if every expert has a host on every layer.
    pub fn is_complete(&self) -> bool {
        self.layers.iter().all(ExpertPlacement::is_complete)
    }
}

/// Result of mapping a routing onto a placement.
#[derive(Clone, Debug)]
pub struct DispatchPlan {
    /// `sizes[src][dst]` = token-selections moving from device `src` to
    /// device `dst` for expert computation.
    pub sizes: Vec<Vec<usize>>,
    /// `compute[d][e]` = token-selections device `d` computes for
    /// expert `e` (zero for experts it does not host).
    pub compute: Vec<Vec<usize>>,
}

impl DispatchPlan {
    /// Token-selections device `d` computes in total.
    pub fn compute_load(&self, d: usize) -> usize {
        self.compute[d].iter().sum()
    }

    /// The all-to-all byte matrix given bytes per token-selection.
    pub fn byte_matrix(&self, bytes_per_token: f64) -> Vec<Vec<f64>> {
        self.sizes
            .iter()
            .map(|row| row.iter().map(|&c| c as f64 * bytes_per_token).collect())
            .collect()
    }

    /// Total selections crossing devices (excluding local dispatch).
    pub fn remote_selections(&self) -> usize {
        self.sizes
            .iter()
            .enumerate()
            .map(|(s, row)| {
                row.iter()
                    .enumerate()
                    .filter(|&(d, _)| d != s)
                    .map(|(_, &c)| c)
                    .sum::<usize>()
            })
            .sum()
    }
}

/// Assigns each (device, expert) token count to a replica of the expert:
/// prefer a replica on the same device, then the same node, then the
/// globally least-loaded replica; token counts for one expert from one
/// device may split across replicas to balance load.
///
/// # Panics
///
/// Panics if the placement is missing a host for an expert that
/// receives tokens.
pub fn assign_replicas(
    routing: &LayerRouting,
    placement: &ExpertPlacement,
    topo: &Topology,
) -> DispatchPlan {
    let devices = routing.devices();
    let mut sizes = vec![vec![0usize; devices]; devices];
    let mut compute = vec![vec![0usize; placement.experts()]; devices];
    for e in 0..placement.experts() {
        let total: usize = (0..devices).map(|d| routing.counts[d][e]).sum();
        if total == 0 {
            continue;
        }
        let hosts = &placement.hosts[e];
        assert!(!hosts.is_empty(), "assign_replicas: expert {e} has no host");
        // Per-replica fair shares follow the placement's intent.
        let weight_sum: f64 = placement.shares[e].iter().sum();
        let fairs: Vec<usize> = placement.shares[e]
            .iter()
            .map(|&w| ((total as f64) * w / weight_sum).ceil() as usize)
            .collect();
        let mut load = vec![0usize; hosts.len()];
        let mut assign = |d: usize, h: usize, take: usize, load: &mut Vec<usize>| {
            let dst = hosts[h].0 as usize;
            sizes[d][dst] += take;
            compute[dst][e] += take;
            load[h] += take;
        };
        // Phase A: sources with a local replica claim it first — a
        // same-device replica takes everything; a same-node replica
        // takes up to a softened fair share (locality beats strict
        // balance up to 50% overload). Remote-only sources defer.
        let mut deferred: Vec<(usize, usize)> = Vec::new();
        for d in 0..devices {
            let mut remaining = routing.counts[d][e];
            if remaining == 0 {
                continue;
            }
            let src = DeviceId(d as u32);
            if let Some(h) = (0..hosts.len()).find(|&h| hosts[h] == src) {
                assign(d, h, remaining, &mut load);
                continue;
            }
            // Same-node replicas, least-filled first, soft-capped at
            // 1.5x their intended share.
            let mut local: Vec<usize> = (0..hosts.len())
                .filter(|&h| topo.same_node(hosts[h], src))
                .collect();
            local.sort_by_key(|&h| (load[h] * 1000 / fairs[h].max(1), h));
            for h in local {
                if remaining == 0 {
                    break;
                }
                let soft_cap = fairs[h] + fairs[h] / 2;
                let take = remaining.min(soft_cap.saturating_sub(load[h]));
                if take > 0 {
                    assign(d, h, take, &mut load);
                    remaining -= take;
                }
            }
            if remaining > 0 {
                deferred.push((d, remaining));
            }
        }
        // Phase B: remote/overflow traffic goes to the least-loaded
        // replica under the fair cap; when every replica is at the cap,
        // fall back to plain least-loaded.
        for (d, mut remaining) in deferred {
            while remaining > 0 {
                let under: Option<usize> = (0..hosts.len())
                    .filter(|&h| load[h] < fairs[h])
                    .min_by_key(|&h| (load[h] * 1000 / fairs[h].max(1), h));
                match under {
                    Some(h) => {
                        let take = remaining.min(fairs[h] - load[h]);
                        assign(d, h, take, &mut load);
                        remaining -= take;
                    }
                    None => {
                        // Everyone is at their share: top up the
                        // relatively least-filled replica.
                        let h = (0..hosts.len())
                            .min_by_key(|&h| (load[h] * 1000 / fairs[h].max(1), h))
                            .expect("nonempty");
                        assign(d, h, remaining, &mut load);
                        remaining = 0;
                    }
                }
            }
        }
    }
    DispatchPlan { sizes, compute }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lina_netsim::ClusterSpec;

    fn topo16() -> Topology {
        Topology::new(ClusterSpec::paper_testbed())
    }

    #[test]
    fn balanced_routing_is_uniform() {
        let r = LayerRouting::balanced(4, 4, 100, 2);
        assert_eq!(r.total(), 800);
        for e in 0..4 {
            assert_eq!(r.tokens_to_expert(e), 200);
        }
        assert!((r.skew() - 1.0).abs() < 1e-12);
        for p in r.popularity() {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn balanced_routing_distributes_remainder() {
        let r = LayerRouting::balanced(1, 3, 10, 1);
        assert_eq!(r.total(), 10);
        let counts: Vec<usize> = (0..3).map(|e| r.tokens_to_expert(e)).collect();
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert!(counts.iter().max().unwrap() - counts.iter().min().unwrap() <= 1);
    }

    #[test]
    fn ranked_experts_order() {
        let mut r = LayerRouting::empty(1, 3);
        r.counts[0] = vec![5, 20, 10];
        assert_eq!(r.ranked_experts(), vec![1, 2, 0]);
    }

    #[test]
    fn one_per_device_placement() {
        let p = ExpertPlacement::one_per_device(4, 16);
        assert!(p.is_complete());
        assert_eq!(p.total_replicas(), 4);
        assert_eq!(p.experts_on(DeviceId(2)), vec![2]);
        assert_eq!(p.experts_on(DeviceId(10)), Vec::<usize>::new());
    }

    #[test]
    fn packed_two_per_device_covers_all_experts() {
        let topo = topo16();
        let p = ExpertPlacement::packed(16, &topo, 2);
        assert!(p.is_complete());
        // 16 devices x 2 slots = 32 replicas over 16 experts = 2 each.
        assert_eq!(p.total_replicas(), 32);
        for hs in &p.hosts {
            assert_eq!(hs.len(), 2);
        }
        assert_eq!(p.max_per_device(16), 2);
    }

    #[test]
    fn packed_full_node_replica_set_keeps_traffic_local() {
        // 8 experts, 8 GPUs over 2 nodes, 2 per device: each node holds
        // all 8 experts, so no selection needs to cross nodes.
        let topo = Topology::new(ClusterSpec::with_total_gpus(8));
        let p = ExpertPlacement::packed(8, &topo, 2);
        assert!(p.is_complete());
        let r = LayerRouting::balanced(8, 8, 512, 2);
        let plan = assign_replicas(&r, &p, &topo);
        for (s, row) in plan.sizes.iter().enumerate() {
            for (d, &c) in row.iter().enumerate() {
                if c > 0 {
                    assert!(
                        topo.same_node(DeviceId(s as u32), DeviceId(d as u32)),
                        "selection crossed nodes: {s} -> {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_all_experts_everywhere_means_no_transfer() {
        let topo = Topology::new(ClusterSpec::with_total_gpus(2));
        let p = ExpertPlacement::packed(2, &topo, 2);
        let r = LayerRouting::balanced(2, 2, 512, 2);
        let plan = assign_replicas(&r, &p, &topo);
        assert_eq!(plan.remote_selections(), 0);
    }

    #[test]
    fn assign_replicas_conserves_tokens() {
        let topo = topo16();
        let p = ExpertPlacement::packed(16, &topo, 2);
        let mut r = LayerRouting::empty(16, 16);
        // Skewed: everyone loves expert 3.
        for d in 0..16 {
            r.counts[d][3] = 100;
            r.counts[d][7] = 10;
        }
        let plan = assign_replicas(&r, &p, &topo);
        let computed: usize = (0..16).map(|d| plan.compute_load(d)).sum();
        assert_eq!(computed, r.total());
        let moved: usize = plan.sizes.iter().flatten().sum();
        assert_eq!(moved, r.total());
        // Only hosts of expert 3 compute it.
        for d in 0..16 {
            if plan.compute[d][3] > 0 {
                assert!(p.experts_on(DeviceId(d as u32)).contains(&3));
            }
        }
    }

    #[test]
    fn replicas_split_load_of_popular_expert() {
        let topo = topo16();
        // Expert 0 has 4 replicas; all devices send it lots of tokens.
        let mut hosts = vec![vec![DeviceId(0), DeviceId(4), DeviceId(8), DeviceId(12)]];
        hosts.extend((1..16).map(|e| vec![DeviceId(e as u32)]));
        let p = ExpertPlacement::uniform(hosts);
        let mut r = LayerRouting::empty(16, 16);
        for d in 0..16 {
            r.counts[d][0] = 400;
        }
        let plan = assign_replicas(&r, &p, &topo);
        let loads: Vec<usize> = [0, 4, 8, 12].iter().map(|&d| plan.compute[d][0]).collect();
        let total: usize = loads.iter().sum();
        assert_eq!(total, 6400);
        for &l in &loads {
            assert!(
                (l as f64 - 1600.0).abs() <= 160.0,
                "replica load {l} far from fair share 1600 ({loads:?})"
            );
        }
    }

    #[test]
    fn local_replica_preferred() {
        let topo = topo16();
        let p = ExpertPlacement::packed(16, &topo, 16);
        // Every device hosts every expert: nothing should move.
        let r = LayerRouting::balanced(16, 16, 128, 2);
        let plan = assign_replicas(&r, &p, &topo);
        assert_eq!(plan.remote_selections(), 0);
    }

    #[test]
    fn weighted_shares_bias_replica_loads() {
        let topo = topo16();
        // Expert 0 has two replicas with a 3:1 intended split.
        let mut p = ExpertPlacement::uniform(vec![vec![DeviceId(0), DeviceId(8)]]);
        p.shares[0] = vec![3.0, 1.0];
        let mut r = LayerRouting::empty(16, 1);
        for d in 0..16 {
            r.counts[d][0] = 400;
        }
        let plan = assign_replicas(&r, &p, &topo);
        let l0 = plan.compute[0][0] as f64;
        let l8 = plan.compute[8][0] as f64;
        assert_eq!(l0 as usize + l8 as usize, 6400);
        assert!(
            (l0 / l8 - 3.0).abs() < 0.6,
            "replica loads {l0}/{l8} should honor the 3:1 shares"
        );
    }

    #[test]
    fn byte_matrix_scales() {
        let topo = topo16();
        let p = ExpertPlacement::one_per_device(16, 16);
        let r = LayerRouting::balanced(16, 16, 64, 1);
        let plan = assign_replicas(&r, &p, &topo);
        let bytes = plan.byte_matrix(1024.0);
        for (s, row) in plan.sizes.iter().enumerate() {
            for (d, &c) in row.iter().enumerate() {
                assert_eq!(bytes[s][d], c as f64 * 1024.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "no host")]
    fn missing_host_panics() {
        let topo = topo16();
        let p = ExpertPlacement::uniform(vec![vec![]]);
        let mut r = LayerRouting::empty(16, 1);
        r.counts[0][0] = 5;
        assign_replicas(&r, &p, &topo);
    }

    #[test]
    fn device_load_counts_hosted_replicas() {
        let mut p = ExpertPlacement::one_per_device(4, 8);
        assert_eq!(p.device_load(8), vec![1, 1, 1, 1, 0, 0, 0, 0]);
        p.hosts[0].push(DeviceId(4));
        p.shares[0].push(1.0);
        assert_eq!(p.device_load(8), vec![1, 1, 1, 1, 1, 0, 0, 0]);
    }

    #[test]
    fn add_replica_prefers_least_crowded_lowest_id() {
        let mut p = ExpertPlacement::one_per_device(4, 8);
        assert!(p.add_replica(0, 8, 2));
        // Devices 4..8 are empty; the lowest id wins.
        assert_eq!(p.hosts[0], vec![DeviceId(0), DeviceId(4)]);
        assert_eq!(p.shares[0], vec![1.0, 1.0]);
    }

    #[test]
    fn add_replica_respects_cap_and_existing_hosts() {
        // Every device already hosts one expert; cap 1 leaves nowhere.
        let mut p = ExpertPlacement::one_per_device(4, 4);
        assert!(!p.add_replica(0, 4, 1));
        // Cap 2 allows a second tenant (lowest id not hosting 0 is 1).
        assert!(p.add_replica(0, 4, 2));
        assert_eq!(p.hosts[0], vec![DeviceId(0), DeviceId(1)]);
    }

    #[test]
    fn drop_replica_refuses_last_and_picks_most_crowded() {
        let mut p = ExpertPlacement::one_per_device(4, 4);
        assert!(!p.drop_replica(0, 4), "last replica must survive");
        assert!(p.add_replica(0, 4, 2));
        // Device 1 now hosts two experts (1 and the new replica of 0):
        // it is the most crowded, so the drop peels the replica there.
        assert!(p.drop_replica(0, 4));
        assert_eq!(p.hosts[0], vec![DeviceId(0)]);
        assert_eq!(p.shares[0], vec![1.0]);
    }

    #[test]
    fn migrate_replica_only_when_strictly_better() {
        // Expert 0 shares device 0 with experts 1 and 2; devices 2 and
        // 3 are empty — migrating strictly reduces crowding.
        let mut p = ExpertPlacement::uniform(vec![
            vec![DeviceId(0)],
            vec![DeviceId(0)],
            vec![DeviceId(0)],
        ]);
        assert!(p.migrate_replica(0, 4, 2));
        assert_eq!(p.hosts[0], vec![DeviceId(1)]);
        // A balanced map has no strictly better home: no-op.
        let mut q = ExpertPlacement::one_per_device(4, 4);
        assert!(!q.migrate_replica(0, 4, 2));
        assert_eq!(q.hosts[0], vec![DeviceId(0)]);
    }

    #[test]
    fn uniform_layered_placement_replicates_one_map() {
        let base = ExpertPlacement::one_per_device(4, 8);
        let lp = LayeredPlacement::uniform(base.clone(), 6);
        assert_eq!(lp.n_layers(), 6);
        assert_eq!(lp.experts(), 4);
        assert!(lp.is_uniform());
        assert!(lp.is_complete());
        for l in 0..6 {
            assert_eq!(lp.layer(l), &base);
        }
    }

    #[test]
    fn from_layers_keeps_per_layer_maps() {
        let a = ExpertPlacement::one_per_device(4, 8);
        let mut b = a.clone();
        assert!(b.add_replica(2, 8, 2));
        let lp = LayeredPlacement::from_layers(vec![a.clone(), b.clone()]);
        assert_eq!(lp.layer(0), &a);
        assert_eq!(lp.layer(1), &b);
        assert!(!lp.is_uniform());
    }

    #[test]
    #[should_panic(expected = "disagree on expert count")]
    fn from_layers_rejects_mismatched_experts() {
        LayeredPlacement::from_layers(vec![
            ExpertPlacement::one_per_device(4, 8),
            ExpertPlacement::one_per_device(5, 8),
        ]);
    }
}
