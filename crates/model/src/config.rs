//! MoE model configurations.
//!
//! The paper converts dense Transformer language models to MoE by
//! replacing every FFN layer with an MoE layer (one FFN expert per
//! device, top-2 gating in training, top-1 in inference). This module
//! describes those models and computes their parameter/tensor sizes; the
//! presets mirror the evaluation's models, whose parameter counts match
//! the paper's Table 1 within a few percent.

/// Architecture family, which decides which passes a step runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModelKind {
    /// Encoder-only (BERT-style).
    Encoder,
    /// Decoder-only (GPT-style, Transformer-XL).
    Decoder,
    /// Encoder-decoder (BERT2GPT2, T5).
    EncoderDecoder,
}

/// Configuration of an MoE Transformer model.
///
/// # Examples
///
/// ```
/// use lina_model::MoeModelConfig;
///
/// let model = MoeModelConfig::transformer_xl(12, 16);
/// // The preset matches the paper's 419M-parameter Table 1 entry.
/// let params = model.total_params() as f64;
/// assert!((params - 419e6).abs() / 419e6 < 0.12);
/// assert_eq!(model.for_inference().top_k, 1);
/// ```
#[derive(Clone, Debug)]
pub struct MoeModelConfig {
    /// Human-readable name, e.g. `"Transformer-XL"`.
    pub name: String,
    /// Architecture family.
    pub kind: ModelKind,
    /// Number of Transformer layers (each contributes one MoE layer).
    pub layers: usize,
    /// Hidden (embedding) dimension `H`.
    pub hidden: usize,
    /// Expert FFN inner dimension `F` (typically `4 H`).
    pub ffn_hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Vocabulary size (embedding table rows).
    pub vocab: usize,
    /// Tokens per sequence.
    pub seq_len: usize,
    /// Attention span (keys attended per query). Transformer-XL's
    /// segment memory makes this larger than `seq_len`.
    pub attn_span: usize,
    /// Number of experts per MoE layer (== number of devices in the
    /// paper's expert-parallel setup).
    pub experts: usize,
    /// Experts selected per token (2 in training, 1 in inference).
    pub top_k: usize,
    /// Bytes per parameter/activation element (2 for fp16).
    pub dtype_bytes: usize,
    /// Bytes per gradient element in the data-parallel allreduce
    /// (mixed-precision training reduces fp32 master gradients).
    pub grad_dtype_bytes: usize,
}

impl MoeModelConfig {
    /// Transformer-XL preset (24-layer encoder in the paper's training
    /// set; 12/24/36-layer variants appear in Table 1).
    pub fn transformer_xl(layers: usize, experts: usize) -> Self {
        MoeModelConfig {
            name: "Transformer-XL".into(),
            kind: ModelKind::Decoder,
            layers,
            hidden: 512,
            ffn_hidden: 2048,
            heads: 8,
            vocab: 32_000,
            seq_len: 512,
            attn_span: 2048,
            experts,
            top_k: 2,
            dtype_bytes: 2,
            grad_dtype_bytes: 4,
        }
    }

    /// GPT-2 preset (12-layer decoder).
    pub fn gpt2(experts: usize) -> Self {
        MoeModelConfig {
            name: "GPT-2".into(),
            kind: ModelKind::Decoder,
            layers: 12,
            hidden: 768,
            ffn_hidden: 3072,
            heads: 12,
            vocab: 50_257,
            seq_len: 512,
            attn_span: 512,
            experts,
            top_k: 2,
            dtype_bytes: 2,
            grad_dtype_bytes: 4,
        }
    }

    /// BERT2GPT2 preset (12-layer encoder-decoder).
    pub fn bert2gpt2(experts: usize) -> Self {
        MoeModelConfig {
            name: "BERT2GPT2".into(),
            kind: ModelKind::EncoderDecoder,
            layers: 12,
            hidden: 768,
            ffn_hidden: 3072,
            heads: 12,
            vocab: 30_522,
            seq_len: 448,
            attn_span: 448,
            experts,
            top_k: 2,
            dtype_bytes: 2,
            grad_dtype_bytes: 4,
        }
    }

    /// BERT-Large preset (the paper's translation inference model).
    pub fn bert_large(experts: usize) -> Self {
        MoeModelConfig {
            name: "BERT-Large".into(),
            kind: ModelKind::Encoder,
            layers: 12,
            hidden: 1024,
            ffn_hidden: 4096,
            heads: 16,
            vocab: 30_522,
            seq_len: 384,
            attn_span: 384,
            experts,
            top_k: 2,
            dtype_bytes: 2,
            grad_dtype_bytes: 4,
        }
    }

    /// T5 preset (Table 6 generalizability tasks).
    pub fn t5(experts: usize) -> Self {
        MoeModelConfig {
            name: "T5".into(),
            kind: ModelKind::EncoderDecoder,
            layers: 12,
            hidden: 768,
            ffn_hidden: 3072,
            heads: 12,
            vocab: 32_128,
            seq_len: 512,
            attn_span: 512,
            experts,
            top_k: 2,
            dtype_bytes: 2,
            grad_dtype_bytes: 4,
        }
    }

    /// Switches the model to inference-time gating (top-1, per the
    /// paper's §7.1).
    pub fn for_inference(mut self) -> Self {
        self.top_k = 1;
        self
    }

    /// Parameters in one attention block (QKV + output projections;
    /// encoder-decoder models average in the decoder's cross-attention).
    pub fn attention_params(&self) -> usize {
        let base = 4 * self.hidden * self.hidden + 4 * self.hidden;
        match self.kind {
            ModelKind::EncoderDecoder => base * 3 / 2,
            _ => base,
        }
    }

    /// Parameters in one expert FFN (two linear layers with bias).
    pub fn expert_params(&self) -> usize {
        2 * self.hidden * self.ffn_hidden + self.ffn_hidden + self.hidden
    }

    /// Parameters in one gating network.
    pub fn gate_params(&self) -> usize {
        self.hidden * self.experts
    }

    /// Parameters in the layer norms and embeddings shared across the
    /// data-parallel group.
    pub fn embedding_params(&self) -> usize {
        self.vocab * self.hidden
    }

    /// Parameters of the output head. The paper's language models tie
    /// the head to the embedding table, so this adds nothing; it exists
    /// as an extension point for untied variants.
    pub fn head_params(&self) -> usize {
        0
    }

    /// Total parameters of the model (all experts included).
    pub fn total_params(&self) -> usize {
        self.layers
            * (self.attention_params()
                + self.gate_params()
                + self.experts * self.expert_params()
                + 4 * self.hidden)
            + self.embedding_params()
            + self.head_params()
    }

    /// Parameters replicated on every device under data parallelism
    /// (everything except the experts), i.e. the gradient volume that
    /// goes through allreduce each step.
    pub fn non_expert_params(&self) -> usize {
        self.layers * (self.attention_params() + self.gate_params() + 4 * self.hidden)
            + self.embedding_params()
            + self.head_params()
    }

    /// Parameters resident per device: non-expert replica plus the
    /// device's own expert in each layer.
    pub fn params_per_device(&self) -> usize {
        self.non_expert_params() + self.layers * self.expert_params()
    }

    /// Bytes of one expert's parameters.
    pub fn expert_bytes(&self) -> f64 {
        (self.expert_params() * self.dtype_bytes) as f64
    }

    /// Bytes of non-expert gradients produced per layer (attention +
    /// gate + layer norms). Embedding gradients are charged to layer 0.
    pub fn non_expert_grad_bytes_per_layer(&self, layer: usize) -> f64 {
        let mut params = self.attention_params() + self.gate_params() + 4 * self.hidden;
        if layer == 0 {
            // Embedding gradients are produced at the very end of the
            // backward pass.
            params += self.embedding_params();
        }
        (params * self.grad_dtype_bytes) as f64
    }

    /// Bytes each device contributes to one all-to-all: every local
    /// token's activation travels to `top_k` experts.
    pub fn a2a_bytes_per_device(&self, tokens_per_device: usize) -> f64 {
        (tokens_per_device * self.top_k * self.hidden * self.dtype_bytes) as f64
    }

    /// Token embedding bytes.
    pub fn token_bytes(&self) -> f64 {
        (self.hidden * self.dtype_bytes) as f64
    }
}

/// A training/inference batch shape.
#[derive(Clone, Copy, Debug)]
pub struct BatchShape {
    /// Sequences per device.
    pub seqs_per_device: usize,
    /// Tokens per sequence (usually the model's `seq_len`).
    pub seq_len: usize,
}

impl BatchShape {
    /// Tokens each device processes per step.
    pub fn tokens_per_device(&self) -> usize {
        self.seqs_per_device * self.seq_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformer_xl_param_counts_match_table1() {
        // Table 1: 12L+117M / 24L+233M / 36L+349M at 4 experts;
        // 12L+419M / 24L+838M / 36L+1.2B at 16 experts.
        let cases = [
            (12, 4, 117e6),
            (24, 4, 233e6),
            (36, 4, 349e6),
            (12, 16, 419e6),
            (24, 16, 838e6),
            (36, 16, 1_200e6),
        ];
        for (layers, experts, expected) in cases {
            let m = MoeModelConfig::transformer_xl(layers, experts);
            let got = m.total_params() as f64;
            let err = (got - expected).abs() / expected;
            assert!(
                err < 0.12,
                "{layers}L/{experts}e: {got:.2e} params vs paper {expected:.2e} ({:.0}% off)",
                err * 100.0
            );
        }
    }

    #[test]
    fn non_expert_smaller_than_total() {
        let m = MoeModelConfig::gpt2(16);
        assert!(m.non_expert_params() < m.total_params());
        assert!(m.params_per_device() < m.total_params());
        assert!(m.params_per_device() > m.non_expert_params());
    }

    #[test]
    fn inference_gating_is_top1() {
        let m = MoeModelConfig::transformer_xl(12, 4).for_inference();
        assert_eq!(m.top_k, 1);
    }

    #[test]
    fn a2a_bytes_scale_with_tokens_and_topk() {
        let m = MoeModelConfig::transformer_xl(12, 4);
        let b1 = m.a2a_bytes_per_device(1000);
        let b2 = m.a2a_bytes_per_device(2000);
        assert!((b2 / b1 - 2.0).abs() < 1e-12);
        let inf = m.clone().for_inference();
        assert!(
            (m.a2a_bytes_per_device(1000) / inf.a2a_bytes_per_device(1000) - 2.0).abs() < 1e-12
        );
    }

    #[test]
    fn grad_bytes_include_embeddings_once() {
        let m = MoeModelConfig::gpt2(4);
        let l0 = m.non_expert_grad_bytes_per_layer(0);
        let l1 = m.non_expert_grad_bytes_per_layer(1);
        assert!(l0 > l1);
        let total: f64 = (0..m.layers)
            .map(|l| m.non_expert_grad_bytes_per_layer(l))
            .sum();
        assert!(
            (total - (m.non_expert_params() * m.grad_dtype_bytes) as f64).abs() < 1.0,
            "per-layer grads must sum to the non-expert volume"
        );
    }

    #[test]
    fn batch_shape_tokens() {
        let b = BatchShape {
            seqs_per_device: 8,
            seq_len: 512,
        };
        assert_eq!(b.tokens_per_device(), 4096);
    }

    #[test]
    fn presets_have_distinct_names() {
        let names = [
            MoeModelConfig::transformer_xl(12, 4).name,
            MoeModelConfig::gpt2(4).name,
            MoeModelConfig::bert2gpt2(4).name,
            MoeModelConfig::bert_large(4).name,
            MoeModelConfig::t5(4).name,
        ];
        let mut unique = names.to_vec();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }
}
