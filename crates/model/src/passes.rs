//! Compiling a training step into an op graph.
//!
//! The builder lays out the forward and backward passes of an MoE model
//! under hybrid (data + expert) parallelism. The options encode the
//! *mechanisms* whose combinations the paper evaluates:
//!
//! * gradient communication as PyTorch-DDP-style fused **buckets**
//!   (baseline) or Lina's equal-sized **partitioned micro-ops**;
//! * all-to-all as a whole-tensor op (baseline) or **chunked micro-ops**,
//!   optionally **pipelined** with the expert FFN;
//! * an [`ExpertPlacement`] that replicates/packs experts, which shrinks
//!   or eliminates all-to-all traffic (Lina's expert packing).
//!
//! Which mechanism a system uses is decided by the scheduler policies in
//! `lina-core` / `lina-baselines`; this module only builds the DAG.

// Device/layer indices address several parallel structures at once
// (op tails, dependency lists, `DeviceId`, op labels); zipped iterators
// would obscure that.
#![allow(clippy::needless_range_loop)]

use lina_netsim::{AllToAllAlgo, CollectiveSpec, DeviceId, Topology};
use lina_simcore::{Rng, SimDuration, SpanKind};

use crate::config::{BatchShape, MoeModelConfig};
use crate::cost::CostModel;
use crate::graph::{CommClass, CommMeta, OpGraph, OpId};
use crate::routing::{assign_replicas, DispatchPlan, ExpertPlacement, LayerRouting};

/// How non-expert gradients travel through allreduce.
#[derive(Clone, Copy, Debug)]
pub enum GradCommMode {
    /// Fuse consecutive gradients into buckets of roughly this many
    /// bytes (PyTorch DistributedDataParallel's behaviour).
    Bucketed {
        /// Bucket capacity in bytes (DDP default is 25 MiB).
        bucket_bytes: f64,
    },
    /// Partition every gradient tensor into equal chunks of at most
    /// this many bytes; one allreduce micro-op per chunk, never fusing
    /// across gradients (Lina §4.2).
    Partitioned {
        /// Partition size in bytes (the paper uses 30 MB).
        chunk_bytes: f64,
    },
}

/// How the all-to-all tensor is split into micro-ops.
#[derive(Clone, Copy, Debug)]
pub enum A2aChunking {
    /// One whole-tensor all-to-all (baseline).
    Whole,
    /// Micro-ops of at most this many bytes per device (Lina).
    FixedBytes(f64),
    /// A fixed number of equal micro-ops (Tutel-style two-way overlap).
    Count(usize),
}

/// Options controlling how the step graph is built.
#[derive(Clone, Debug)]
pub struct TrainStepOptions {
    /// Gradient allreduce granularity.
    pub grad_comm: GradCommMode,
    /// All-to-all micro-op granularity.
    pub a2a_chunking: A2aChunking,
    /// Pipeline expert FFN chunks with all-to-all micro-ops (requires
    /// chunking to have an effect).
    pub pipeline_ffn: bool,
    /// Expert-to-device placement (packing/replication).
    pub placement: ExpertPlacement,
    /// All-to-all decomposition on the wire.
    pub a2a_algo: AllToAllAlgo,
    /// Log-normal sigma applied to compute durations (models kernel
    /// time variance; 0 disables).
    pub jitter_sigma: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl TrainStepOptions {
    /// The DeepSpeed-like baseline: bucketed allreduce, whole-tensor
    /// all-to-all, one expert per device.
    pub fn baseline(experts: usize, devices: usize) -> Self {
        TrainStepOptions {
            grad_comm: GradCommMode::Bucketed {
                bucket_bytes: 25.0 * 1024.0 * 1024.0,
            },
            a2a_chunking: A2aChunking::Whole,
            pipeline_ffn: false,
            placement: ExpertPlacement::one_per_device(experts, devices),
            a2a_algo: AllToAllAlgo::Flat,
            jitter_sigma: 0.03,
            seed: 1,
        }
    }

    /// Lina's full configuration: partitioned micro-ops (30 MB),
    /// chunked + pipelined all-to-all, and the given packing.
    pub fn lina(placement: ExpertPlacement) -> Self {
        TrainStepOptions {
            grad_comm: GradCommMode::Partitioned { chunk_bytes: 30e6 },
            a2a_chunking: A2aChunking::FixedBytes(30e6),
            pipeline_ffn: true,
            placement,
            a2a_algo: AllToAllAlgo::Flat,
            jitter_sigma: 0.03,
            seed: 1,
        }
    }
}

/// Builder state for one training step.
struct StepBuilder<'a> {
    cost: &'a CostModel,
    topo: &'a Topology,
    opts: &'a TrainStepOptions,
    batch: BatchShape,
    graph: OpGraph,
    rng: Rng,
    next_op_index: usize,
}

impl<'a> StepBuilder<'a> {
    fn model(&self) -> &MoeModelConfig {
        &self.cost.model
    }

    fn devices(&self) -> usize {
        self.topo.devices()
    }

    fn jittered(&mut self, d: SimDuration) -> SimDuration {
        if self.opts.jitter_sigma <= 0.0 {
            return d;
        }
        d.mul_f64(self.rng.jitter(self.opts.jitter_sigma))
    }

    /// Number of all-to-all micro-ops for a dispatch plan.
    fn a2a_chunks(&self, plan: &DispatchPlan) -> usize {
        match self.opts.a2a_chunking {
            A2aChunking::Whole => 1,
            A2aChunking::Count(n) => n.max(1),
            A2aChunking::FixedBytes(chunk_bytes) => {
                let max_send = (0..self.devices())
                    .map(|d| plan.sizes[d].iter().sum::<usize>())
                    .max()
                    .unwrap_or(0) as f64
                    * self.model().token_bytes();
                ((max_send / chunk_bytes).ceil() as usize).max(1)
            }
        }
    }

    /// Emits the all-to-all micro-ops for `sizes` (bytes), splitting into
    /// `nchunks`; returns one op id per chunk. `deps_per_chunk` gives
    /// each chunk its own dependencies (pipelining); a single entry is
    /// shared by all chunks. Returns an empty vec if there is no remote
    /// traffic at all (fully local dispatch).
    fn emit_a2a(
        &mut self,
        sizes: &[Vec<f64>],
        nchunks: usize,
        layer: usize,
        backward: bool,
        deps_per_chunk: &[Vec<OpId>],
        which: &str,
    ) -> Vec<OpId> {
        let any_remote = sizes
            .iter()
            .enumerate()
            .any(|(i, row)| row.iter().enumerate().any(|(j, &b)| i != j && b > 0.0));
        if !any_remote {
            return Vec::new();
        }
        let participants: Vec<DeviceId> = self.topo.device_ids().collect();
        let per_device_bytes = sizes
            .iter()
            .map(|row| row.iter().sum::<f64>())
            .fold(0.0, f64::max);
        let op_index = self.next_op_index;
        self.next_op_index += 1;
        let mut ids = Vec::with_capacity(nchunks);
        for chunk in 0..nchunks {
            let chunk_sizes: Vec<Vec<f64>> = sizes
                .iter()
                .map(|row| row.iter().map(|&b| b / nchunks as f64).collect())
                .collect();
            let spec = CollectiveSpec::AllToAll {
                participants: participants.clone(),
                sizes: chunk_sizes,
                algo: self.opts.a2a_algo,
            };
            let meta = CommMeta {
                class: CommClass::AllToAll,
                layer,
                chunk,
                nchunks,
                bytes_per_device: per_device_bytes / nchunks as f64,
                backward,
                op_index,
            };
            let dir = if backward { "bwd" } else { "fwd" };
            let deps = if deps_per_chunk.len() == 1 {
                deps_per_chunk[0].clone()
            } else {
                deps_per_chunk[chunk.min(deps_per_chunk.len() - 1)].clone()
            };
            ids.push(self.graph.add_comm(
                spec,
                meta,
                deps,
                format!("L{layer} a2a{which} {dir} {}/{}", chunk + 1, nchunks),
            ));
        }
        ids
    }

    /// Emits the expert computation for a dispatch plan, one op per
    /// device per chunk; chunk `i` depends on all-to-all chunk `i` when
    /// pipelining, else on every all-to-all chunk. Returns per-device
    /// op ids of the *last* chunk (what downstream ops wait on), plus
    /// the op ids grouped by chunk (for pipelining the next
    /// all-to-all).
    #[allow(clippy::too_many_arguments)]
    fn emit_expert_compute(
        &mut self,
        plan: &DispatchPlan,
        a2a_ids: &[OpId],
        extra_deps: &[Vec<OpId>],
        nchunks: usize,
        layer: usize,
        backward: bool,
    ) -> (Vec<OpId>, Vec<Vec<OpId>>) {
        let pipeline = self.opts.pipeline_ffn && !a2a_ids.is_empty();
        let mut last_per_device = Vec::with_capacity(self.devices());
        let mut per_chunk: Vec<Vec<OpId>> = vec![Vec::new(); nchunks];
        for d in 0..self.devices() {
            let tokens = plan.compute_load(d);
            let mut last = None;
            for chunk in 0..nchunks {
                let chunk_tokens = tokens / nchunks + usize::from(chunk < tokens % nchunks);
                let dur = if backward {
                    self.cost.expert_bwd(chunk_tokens)
                } else {
                    self.cost.expert_fwd(chunk_tokens)
                };
                let dur = self.jittered(dur);
                let mut deps: Vec<OpId> = extra_deps[d].clone();
                if pipeline {
                    if let Some(&a) = a2a_ids.get(chunk.min(a2a_ids.len() - 1)) {
                        deps.push(a);
                    }
                } else {
                    deps.extend_from_slice(a2a_ids);
                }
                if let Some(prev) = last {
                    deps.push(prev);
                }
                let dir = if backward { "bwd" } else { "fwd" };
                let id = self.graph.add_compute_tagged(
                    DeviceId(d as u32),
                    dur,
                    SpanKind::ExpertFfn,
                    deps,
                    Some(layer),
                    backward,
                    format!("L{layer} ffn {dir} d{d} {}/{}", chunk + 1, nchunks),
                );
                last = Some(id);
                per_chunk[chunk].push(id);
            }
            last_per_device.push(last.expect("nchunks >= 1"));
        }
        (last_per_device, per_chunk)
    }

    /// Builds the forward pass; returns per-device tail ops.
    fn forward(&mut self, routing: &[LayerRouting]) -> Vec<OpId> {
        let tokens = self.batch.tokens_per_device();
        let mut tails: Vec<Option<OpId>> = vec![None; self.devices()];
        for layer in 0..self.model().layers {
            let plan = assign_replicas(&routing[layer], &self.opts.placement, self.topo);
            let nchunks = self.a2a_chunks(&plan);
            // Attention + gate per device.
            let mut gate_ids = Vec::with_capacity(self.devices());
            for d in 0..self.devices() {
                let dep: Vec<OpId> = tails[d].into_iter().collect();
                let attn_dur = self.jittered(self.cost.attention_fwd(tokens));
                let attn = self.graph.add_compute_tagged(
                    DeviceId(d as u32),
                    attn_dur,
                    SpanKind::Attention,
                    dep,
                    Some(layer),
                    false,
                    format!("L{layer} attn fwd d{d}"),
                );
                let gate_dur = self.jittered(self.cost.gate_fwd(tokens));
                let gate = self.graph.add_compute_tagged(
                    DeviceId(d as u32),
                    gate_dur,
                    SpanKind::Gate,
                    vec![attn],
                    Some(layer),
                    false,
                    format!("L{layer} gate fwd d{d}"),
                );
                gate_ids.push(gate);
            }
            // First all-to-all: tokens to experts.
            let bytes = plan.byte_matrix(self.model().token_bytes());
            let a2a1 = self.emit_a2a(&bytes, nchunks, layer, false, &[gate_ids.clone()], "#1");
            // Expert FFN.
            let gate_deps: Vec<Vec<OpId>> =
                (0..self.devices()).map(|d| vec![gate_ids[d]]).collect();
            let (ffn_last, ffn_chunks) =
                self.emit_expert_compute(&plan, &a2a1, &gate_deps, nchunks, layer, false);
            // Second all-to-all: results back to token owners
            // (transposed sizes); when pipelining, chunk i only waits
            // for FFN chunk i.
            let bytes_t = transpose(&bytes);
            let a2a2_deps: Vec<Vec<OpId>> = if self.opts.pipeline_ffn && !a2a1.is_empty() {
                ffn_chunks.clone()
            } else {
                vec![ffn_last.clone()]
            };
            let a2a2 = self.emit_a2a(&bytes_t, nchunks, layer, false, &a2a2_deps, "#2");
            // Combine per device.
            for d in 0..self.devices() {
                let mut deps: Vec<OpId> = a2a2.clone();
                deps.push(ffn_last[d]);
                let dur = self.jittered(self.cost.combine(tokens));
                let id = self.graph.add_compute_tagged(
                    DeviceId(d as u32),
                    dur,
                    SpanKind::Combine,
                    deps,
                    Some(layer),
                    false,
                    format!("L{layer} combine fwd d{d}"),
                );
                tails[d] = Some(id);
            }
        }
        tails
            .into_iter()
            .map(|t| t.expect("at least one layer"))
            .collect()
    }

    /// Builds the backward pass; returns (per-device tail ops, all
    /// allreduce op ids).
    fn backward(
        &mut self,
        routing: &[LayerRouting],
        fwd_tails: Vec<OpId>,
    ) -> (Vec<OpId>, Vec<OpId>) {
        let tokens = self.batch.tokens_per_device();
        let mut tails = fwd_tails;
        let mut allreduce_ids: Vec<OpId> = Vec::new();
        // DDP-style bucket state: gradients accumulate in production
        // order (reverse layers) and flush when the bucket is full.
        let mut bucket_bytes_acc = 0.0;
        let mut bucket_deps: Vec<OpId> = Vec::new();
        let mut bucket_seq = 0usize;
        for layer in (0..self.model().layers).rev() {
            let plan = assign_replicas(&routing[layer], &self.opts.placement, self.topo);
            let nchunks = self.a2a_chunks(&plan);
            let bytes = plan.byte_matrix(self.model().token_bytes());
            // Combine backward per device.
            let mut comb_ids = Vec::with_capacity(self.devices());
            for d in 0..self.devices() {
                let dur = self.jittered(self.cost.combine(tokens));
                let id = self.graph.add_compute_tagged(
                    DeviceId(d as u32),
                    dur,
                    SpanKind::Combine,
                    vec![tails[d]],
                    Some(layer),
                    true,
                    format!("L{layer} combine bwd d{d}"),
                );
                comb_ids.push(id);
            }
            // All-to-all #2 backward: output grads to experts (same
            // direction pattern as forward's transpose... the gradient
            // of the combine flows back along the forward #2 links).
            let bytes_t = transpose(&bytes);
            let a2a2b = self.emit_a2a(&bytes_t, nchunks, layer, true, &[comb_ids.clone()], "#2");
            // Expert FFN backward.
            let comb_deps: Vec<Vec<OpId>> =
                (0..self.devices()).map(|d| vec![comb_ids[d]]).collect();
            let (ffn_last, ffn_chunks) =
                self.emit_expert_compute(&plan, &a2a2b, &comb_deps, nchunks, layer, true);
            // All-to-all #1 backward: input grads back to token owners.
            let a2a1_deps: Vec<Vec<OpId>> = if self.opts.pipeline_ffn && !a2a2b.is_empty() {
                ffn_chunks.clone()
            } else {
                vec![ffn_last.clone()]
            };
            let a2a1b = self.emit_a2a(&bytes, nchunks, layer, true, &a2a1_deps, "#1");
            // Gate + attention backward per device; produces this
            // layer's non-expert gradients.
            let mut grad_ready = Vec::with_capacity(self.devices());
            for d in 0..self.devices() {
                let mut deps: Vec<OpId> = a2a1b.clone();
                deps.push(ffn_last[d]);
                let gate_dur = self.jittered(self.cost.gate_bwd(tokens));
                let gate = self.graph.add_compute_tagged(
                    DeviceId(d as u32),
                    gate_dur,
                    SpanKind::Gate,
                    deps,
                    Some(layer),
                    true,
                    format!("L{layer} gate bwd d{d}"),
                );
                let attn_dur = self.jittered(self.cost.attention_bwd(tokens));
                let attn = self.graph.add_compute_tagged(
                    DeviceId(d as u32),
                    attn_dur,
                    SpanKind::Attention,
                    vec![gate],
                    Some(layer),
                    true,
                    format!("L{layer} attn bwd d{d}"),
                );
                grad_ready.push(attn);
                tails[d] = attn;
            }
            // Gradient communication for this layer's non-expert grads.
            let grad_bytes = self.model().non_expert_grad_bytes_per_layer(layer);
            match self.opts.grad_comm {
                GradCommMode::Bucketed { bucket_bytes } => {
                    bucket_bytes_acc += grad_bytes;
                    bucket_deps.extend_from_slice(&grad_ready);
                    let flush = bucket_bytes_acc >= bucket_bytes || layer == 0;
                    if flush {
                        allreduce_ids.push(self.emit_allreduce(
                            bucket_bytes_acc,
                            layer,
                            bucket_seq,
                            0,
                            1,
                            &bucket_deps.clone(),
                        ));
                        bucket_seq += 1;
                        bucket_bytes_acc = 0.0;
                        bucket_deps.clear();
                    }
                }
                GradCommMode::Partitioned { chunk_bytes } => {
                    let n = ((grad_bytes / chunk_bytes).ceil() as usize).max(1);
                    for chunk in 0..n {
                        allreduce_ids.push(self.emit_allreduce(
                            grad_bytes / n as f64,
                            layer,
                            bucket_seq,
                            chunk,
                            n,
                            &grad_ready,
                        ));
                    }
                    bucket_seq += 1;
                }
            }
        }
        (tails, allreduce_ids)
    }

    fn emit_allreduce(
        &mut self,
        bytes: f64,
        layer: usize,
        seq: usize,
        chunk: usize,
        nchunks: usize,
        deps: &[OpId],
    ) -> OpId {
        let participants: Vec<DeviceId> = self.topo.device_ids().collect();
        let spec = CollectiveSpec::AllReduce {
            participants,
            bytes,
        };
        let meta = CommMeta {
            class: CommClass::Allreduce,
            layer,
            chunk,
            nchunks,
            bytes_per_device: bytes,
            backward: true,
            // Allreduce logical ids live in their own space; offset far
            // from the all-to-all op indices.
            op_index: 1_000_000 + seq * 1_000 + chunk,
        };
        self.graph.add_comm(
            spec,
            meta,
            deps.to_vec(),
            format!("L{layer} allreduce {}/{}", chunk + 1, nchunks),
        )
    }

    fn finish(mut self, routing: &[LayerRouting]) -> OpGraph {
        let fwd_tails = self.forward(routing);
        let (bwd_tails, allreduce_ids) = self.backward(routing, fwd_tails);
        // Optimizer step per device waits for that device's backward
        // tail and every allreduce.
        for d in 0..self.devices() {
            let mut deps = allreduce_ids.clone();
            deps.push(bwd_tails[d]);
            let dur = self.jittered(self.cost.optimizer_step());
            self.graph.add_compute_tagged(
                DeviceId(d as u32),
                dur,
                SpanKind::Optimizer,
                deps,
                None,
                true,
                format!("optimizer d{d}"),
            );
        }
        self.graph
    }
}

fn transpose(m: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = m.len();
    let mut out = vec![vec![0.0; n]; n];
    for (i, row) in m.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            out[j][i] = v;
        }
    }
    out
}

/// Builds the op graph of one training step.
///
/// `routing` gives the per-layer token routing (one entry per model
/// layer); training routing is near-balanced thanks to the auxiliary
/// loss, so most callers pass [`LayerRouting::balanced`] entries.
///
/// # Panics
///
/// Panics if `routing.len() != model.layers` or the placement is
/// missing hosts.
pub fn build_train_step(
    cost: &CostModel,
    topo: &Topology,
    batch: BatchShape,
    routing: &[LayerRouting],
    opts: &TrainStepOptions,
) -> OpGraph {
    assert_eq!(
        routing.len(),
        cost.model.layers,
        "build_train_step: routing entries must match layers"
    );
    assert!(
        opts.placement.is_complete(),
        "build_train_step: incomplete placement"
    );
    let builder = StepBuilder {
        cost,
        topo,
        opts,
        batch,
        graph: OpGraph::new(),
        rng: Rng::new(opts.seed),
        next_op_index: 0,
    };
    builder.finish(routing)
}

/// Convenience: balanced routing for every layer of a model.
pub fn balanced_routing(
    model: &MoeModelConfig,
    devices: usize,
    batch: BatchShape,
) -> Vec<LayerRouting> {
    (0..model.layers)
        .map(|_| {
            LayerRouting::balanced(
                devices,
                model.experts,
                batch.tokens_per_device(),
                model.top_k,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::DeviceSpec;
    use lina_netsim::ClusterSpec;

    fn setup(experts: usize) -> (CostModel, Topology, BatchShape) {
        let model = MoeModelConfig::transformer_xl(12, experts);
        let topo = Topology::new(ClusterSpec::with_total_gpus(experts));
        let batch = BatchShape {
            seqs_per_device: 4,
            seq_len: model.seq_len,
        };
        (CostModel::new(DeviceSpec::a100(), model), topo, batch)
    }

    #[test]
    fn baseline_graph_structure() {
        let (cost, topo, batch) = setup(16);
        let routing = balanced_routing(&cost.model, 16, batch);
        let opts = TrainStepOptions::baseline(16, 16);
        let g = build_train_step(&cost, &topo, batch, &routing, &opts);
        g.validate();
        // 2 a2a per layer per direction = 4 x layers comm ops.
        let a2a = g.comm_ops(CommClass::AllToAll);
        assert_eq!(a2a.len(), 4 * cost.model.layers);
        // Bucketed allreduce: far fewer ops than layers x 2.
        let ar = g.comm_ops(CommClass::Allreduce);
        assert!(!ar.is_empty());
        assert!(ar.len() <= cost.model.layers);
    }

    #[test]
    fn lina_graph_partitions_comm() {
        let (cost, topo, batch) = setup(16);
        let routing = balanced_routing(&cost.model, 16, batch);
        let placement = ExpertPlacement::one_per_device(16, 16);
        let mut opts = TrainStepOptions::lina(placement);
        opts.a2a_chunking = A2aChunking::FixedBytes(1e6);
        let g = build_train_step(&cost, &topo, batch, &routing, &opts);
        g.validate();
        let baseline_g = build_train_step(
            &cost,
            &topo,
            batch,
            &routing,
            &TrainStepOptions::baseline(16, 16),
        );
        assert!(
            g.comm_ops(CommClass::AllToAll).len() > baseline_g.comm_ops(CommClass::AllToAll).len(),
            "chunked a2a must produce more micro-ops"
        );
        assert!(
            g.comm_ops(CommClass::Allreduce).len()
                > baseline_g.comm_ops(CommClass::Allreduce).len(),
            "partitioned allreduce must produce more micro-ops"
        );
    }

    #[test]
    fn full_packing_eliminates_a2a() {
        // 2 experts on 2 devices with 2 experts per device: pure data
        // parallelism (the paper's 2-expert observation).
        let (cost, topo, batch) = setup(2);
        let routing = balanced_routing(&cost.model, 2, batch);
        let placement = ExpertPlacement::packed(2, &topo, 2);
        let opts = TrainStepOptions::lina(placement);
        let g = build_train_step(&cost, &topo, batch, &routing, &opts);
        g.validate();
        assert!(g.comm_ops(CommClass::AllToAll).is_empty());
        assert!(!g.comm_ops(CommClass::Allreduce).is_empty());
    }

    #[test]
    fn jitter_zero_is_deterministic_sizes() {
        let (cost, topo, batch) = setup(4);
        let routing = balanced_routing(&cost.model, 4, batch);
        let mut opts = TrainStepOptions::baseline(4, 4);
        opts.jitter_sigma = 0.0;
        let g1 = build_train_step(&cost, &topo, batch, &routing, &opts);
        let g2 = build_train_step(&cost, &topo, batch, &routing, &opts);
        assert_eq!(g1.len(), g2.len());
        assert_eq!(
            g1.compute_time_on(DeviceId(0)),
            g2.compute_time_on(DeviceId(0))
        );
    }

    #[test]
    fn partitioned_chunks_respect_size() {
        let (cost, topo, batch) = setup(4);
        let routing = balanced_routing(&cost.model, 4, batch);
        let placement = ExpertPlacement::one_per_device(4, 4);
        let mut opts = TrainStepOptions::lina(placement);
        let chunk = 5e6;
        opts.grad_comm = GradCommMode::Partitioned { chunk_bytes: chunk };
        let g = build_train_step(&cost, &topo, batch, &routing, &opts);
        for id in g.comm_ops(CommClass::Allreduce) {
            if let crate::graph::OpKind::Comm { meta, .. } = &g.op(id).kind {
                assert!(
                    meta.bytes_per_device <= chunk * 1.01,
                    "chunk of {} bytes exceeds partition size",
                    meta.bytes_per_device
                );
            }
        }
    }

    #[test]
    fn allreduce_volume_matches_non_expert_grads() {
        let (cost, topo, batch) = setup(4);
        let routing = balanced_routing(&cost.model, 4, batch);
        for opts in [
            TrainStepOptions::baseline(4, 4),
            TrainStepOptions::lina(ExpertPlacement::one_per_device(4, 4)),
        ] {
            let g = build_train_step(&cost, &topo, batch, &routing, &opts);
            let total: f64 = g
                .comm_ops(CommClass::Allreduce)
                .iter()
                .map(|&id| match &g.op(id).kind {
                    crate::graph::OpKind::Comm { meta, .. } => meta.bytes_per_device,
                    _ => 0.0,
                })
                .sum();
            let expected = (cost.model.non_expert_params() * cost.model.grad_dtype_bytes) as f64;
            assert!(
                (total - expected).abs() / expected < 1e-6,
                "allreduce volume {total} vs grads {expected}"
            );
        }
    }

    #[test]
    fn optimizer_is_last_and_depends_on_allreduce() {
        let (cost, topo, batch) = setup(4);
        let routing = balanced_routing(&cost.model, 4, batch);
        let g = build_train_step(
            &cost,
            &topo,
            batch,
            &routing,
            &TrainStepOptions::baseline(4, 4),
        );
        let ar = g.comm_ops(CommClass::Allreduce);
        let opt_ops: Vec<_> = g
            .ops()
            .iter()
            .enumerate()
            .filter(|(_, op)| matches!(&op.kind, crate::graph::OpKind::Compute { span, .. } if *span == SpanKind::Optimizer))
            .collect();
        assert_eq!(opt_ops.len(), 4);
        for (_, op) in opt_ops {
            for a in &ar {
                assert!(op.deps.contains(a), "optimizer must wait for allreduce");
            }
        }
    }
}
