//! Operation graphs.
//!
//! A training step compiles to a DAG of *compute ops* (pinned to a
//! device, with a duration from the cost model) and *communication ops*
//! (a collective spec plus metadata the scheduler keys on). The runner
//! executes the DAG over the network simulator; scheduling policies only
//! decide the admission order of communication ops — exactly the control
//! a real communication scheduler has over NCCL.

use lina_netsim::{CollectiveSpec, DeviceId};
use lina_simcore::{SimDuration, SpanKind};

/// Index of an op within its graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpId(pub u32);

/// Communication class, the granularity at which priorities apply.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CommClass {
    /// Expert-parallel all-to-all (blocking for the compute stream).
    AllToAll,
    /// Data-parallel gradient allreduce (asynchronous wrt compute).
    Allreduce,
    /// Scheduler control traffic.
    Control,
}

/// Metadata attached to a communication op.
#[derive(Clone, Copy, Debug)]
pub struct CommMeta {
    /// Class of the operation.
    pub class: CommClass,
    /// Model layer the op belongs to.
    pub layer: usize,
    /// Chunk index when the tensor is partitioned into micro-ops.
    pub chunk: usize,
    /// Total chunks of the parent tensor (1 = not partitioned).
    pub nchunks: usize,
    /// Payload bytes per participating device (for diagnostics).
    pub bytes_per_device: f64,
    /// True for backward-pass communication.
    pub backward: bool,
    /// Identifier of the logical operation this micro-op belongs to
    /// (chunks of one partitioned tensor share it).
    pub op_index: usize,
}

/// What an op does.
#[derive(Clone, Debug)]
pub enum OpKind {
    /// Computation on one device.
    Compute {
        /// Device the kernel runs on.
        device: DeviceId,
        /// Kernel duration.
        duration: SimDuration,
        /// Category for the timeline.
        span: SpanKind,
    },
    /// A collective communication operation.
    Comm {
        /// What to launch on the network.
        spec: CollectiveSpec,
        /// Scheduling metadata.
        meta: CommMeta,
    },
}

/// One node of the DAG.
#[derive(Clone, Debug)]
pub struct Op {
    /// Ops that must complete before this one starts.
    pub deps: Vec<OpId>,
    /// Payload.
    pub kind: OpKind,
    /// Model layer this op belongs to, if any.
    pub layer: Option<usize>,
    /// True for backward-pass work.
    pub backward: bool,
    /// Human-readable label for timelines.
    pub label: String,
}

/// A dependency graph of ops. Construction is append-only and an op may
/// only depend on previously added ops, so the graph is acyclic by
/// construction and id order is a topological order.
#[derive(Clone, Debug, Default)]
pub struct OpGraph {
    ops: Vec<Op>,
}

impl OpGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the graph has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The ops, indexable by [`OpId`].
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Access one op.
    pub fn op(&self, id: OpId) -> &Op {
        &self.ops[id.0 as usize]
    }

    /// Adds an op.
    ///
    /// # Panics
    ///
    /// Panics if a dependency references an op not yet added (which
    /// would create a cycle or dangling edge).
    pub fn add(&mut self, op: Op) -> OpId {
        let id = OpId(self.ops.len() as u32);
        for d in &op.deps {
            assert!(d.0 < id.0, "OpGraph::add: dependency {:?} not yet added", d);
        }
        self.ops.push(op);
        id
    }

    /// Convenience: adds an untagged compute op.
    pub fn add_compute(
        &mut self,
        device: DeviceId,
        duration: SimDuration,
        span: SpanKind,
        deps: Vec<OpId>,
        label: impl Into<String>,
    ) -> OpId {
        self.add_compute_tagged(device, duration, span, deps, None, false, label)
    }

    /// Adds a compute op tagged with its layer and pass direction.
    #[allow(clippy::too_many_arguments)]
    pub fn add_compute_tagged(
        &mut self,
        device: DeviceId,
        duration: SimDuration,
        span: SpanKind,
        deps: Vec<OpId>,
        layer: Option<usize>,
        backward: bool,
        label: impl Into<String>,
    ) -> OpId {
        self.add(Op {
            deps,
            kind: OpKind::Compute {
                device,
                duration,
                span,
            },
            layer,
            backward,
            label: label.into(),
        })
    }

    /// Convenience: adds a communication op (layer/direction tags come
    /// from the meta).
    pub fn add_comm(
        &mut self,
        spec: CollectiveSpec,
        meta: CommMeta,
        deps: Vec<OpId>,
        label: impl Into<String>,
    ) -> OpId {
        self.add(Op {
            deps,
            kind: OpKind::Comm { spec, meta },
            layer: Some(meta.layer),
            backward: meta.backward,
            label: label.into(),
        })
    }

    /// Ids of comm ops of a class.
    pub fn comm_ops(&self, class: CommClass) -> Vec<OpId> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| matches!(&op.kind, OpKind::Comm { meta, .. } if meta.class == class))
            .map(|(i, _)| OpId(i as u32))
            .collect()
    }

    /// Total compute duration charged to a device (serial sum).
    pub fn compute_time_on(&self, device: DeviceId) -> SimDuration {
        self.ops
            .iter()
            .filter_map(|op| match &op.kind {
                OpKind::Compute {
                    device: d,
                    duration,
                    ..
                } if *d == device => Some(*duration),
                _ => None,
            })
            .sum()
    }

    /// Validates structural invariants: all dependency edges point
    /// backwards (acyclicity) and every op has a well-formed payload.
    /// Returns the number of edges checked.
    pub fn validate(&self) -> usize {
        let mut edges = 0;
        for (i, op) in self.ops.iter().enumerate() {
            for d in &op.deps {
                assert!((d.0 as usize) < i, "op {i} depends forward on {:?}", d);
                edges += 1;
            }
            if let OpKind::Comm { meta, .. } = &op.kind {
                assert!(meta.chunk < meta.nchunks, "op {i}: chunk out of range");
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lina_netsim::CollectiveSpec;

    fn comm_meta() -> CommMeta {
        CommMeta {
            class: CommClass::AllToAll,
            layer: 0,
            chunk: 0,
            nchunks: 1,
            bytes_per_device: 1.0,
            backward: false,
            op_index: 0,
        }
    }

    #[test]
    fn build_and_validate() {
        let mut g = OpGraph::new();
        let a = g.add_compute(
            DeviceId(0),
            SimDuration::from_millis(1),
            SpanKind::Attention,
            vec![],
            "attn",
        );
        let b = g.add_comm(
            CollectiveSpec::Send {
                src: DeviceId(0),
                dst: DeviceId(1),
                bytes: 10.0,
            },
            comm_meta(),
            vec![a],
            "a2a",
        );
        let _c = g.add_compute(
            DeviceId(1),
            SimDuration::from_millis(2),
            SpanKind::ExpertFfn,
            vec![b],
            "ffn",
        );
        assert_eq!(g.len(), 3);
        assert_eq!(g.validate(), 2);
        assert_eq!(g.comm_ops(CommClass::AllToAll), vec![OpId(1)]);
        assert!(g.comm_ops(CommClass::Allreduce).is_empty());
    }

    #[test]
    fn compute_time_sums_per_device() {
        let mut g = OpGraph::new();
        g.add_compute(
            DeviceId(0),
            SimDuration::from_millis(1),
            SpanKind::Gate,
            vec![],
            "",
        );
        g.add_compute(
            DeviceId(0),
            SimDuration::from_millis(2),
            SpanKind::Combine,
            vec![],
            "",
        );
        g.add_compute(
            DeviceId(1),
            SimDuration::from_millis(5),
            SpanKind::Gate,
            vec![],
            "",
        );
        assert_eq!(g.compute_time_on(DeviceId(0)), SimDuration::from_millis(3));
        assert_eq!(g.compute_time_on(DeviceId(1)), SimDuration::from_millis(5));
        assert_eq!(g.compute_time_on(DeviceId(2)), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "not yet added")]
    fn forward_dependency_panics() {
        let mut g = OpGraph::new();
        g.add_compute(
            DeviceId(0),
            SimDuration::ZERO,
            SpanKind::Other,
            vec![OpId(5)],
            "bad",
        );
    }
}
