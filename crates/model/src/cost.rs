//! Analytic compute cost model.
//!
//! GPU kernel durations are estimated from FLOP counts divided by an
//! effective throughput, plus a fixed launch overhead. Absolute numbers
//! only need to be A100-plausible; every result in the paper is about
//! *relative* magnitudes (communication vs computation, skewed vs
//! balanced), which FLOP scaling preserves.

use lina_simcore::SimDuration;

use crate::config::MoeModelConfig;

/// Compute capability of one device.
#[derive(Clone, Copy, Debug)]
pub struct DeviceSpec {
    /// Effective dense-GEMM throughput, FLOP/s (not the marketing peak).
    pub matmul_flops: f64,
    /// Effective memory bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Fixed per-kernel launch overhead.
    pub kernel_overhead: SimDuration,
    /// Equivalent FLOPs per token of non-GEMM work in a Transformer
    /// block (softmax, layer norms, dropout, residuals, host-side
    /// launches). The paper's profiles show large stretches of
    /// low-SM-efficiency time; this term reproduces the resulting
    /// compute/communication balance.
    pub aux_flops_per_token: f64,
}

impl DeviceSpec {
    /// A100-40GB with realistic efficiency on the paper's modest GEMM
    /// shapes (H = 512..1024 GEMMs reach a small fraction of the
    /// 312 TFLOPS fp16 tensor-core peak; the paper itself reports very
    /// low SM efficiency).
    pub fn a100() -> Self {
        DeviceSpec {
            // Large-M fp16 GEMMs reach ~55-60% of the 312 TFLOPS peak.
            matmul_flops: 180e12,
            mem_bw: 1.3e12,
            kernel_overhead: SimDuration::from_micros(12),
            aux_flops_per_token: 32e6,
        }
    }

    /// A100 running inference: decode-time GEMMs are smaller and far
    /// less efficient than training's large fused batches, and the
    /// paper's Table 1 inference all-to-all ratios (~27-32%) imply a
    /// markedly lower effective throughput.
    pub fn a100_inference() -> Self {
        DeviceSpec {
            matmul_flops: 55e12,
            mem_bw: 1.3e12,
            kernel_overhead: SimDuration::from_micros(12),
            aux_flops_per_token: 20e6,
        }
    }

    /// Time for `flops` of dense math.
    pub fn gemm_time(&self, flops: f64) -> SimDuration {
        SimDuration::from_secs_f64(flops / self.matmul_flops) + self.kernel_overhead
    }

    /// Time for a memory-bound pass over `bytes`.
    pub fn mem_time(&self, bytes: f64) -> SimDuration {
        SimDuration::from_secs_f64(bytes / self.mem_bw) + self.kernel_overhead
    }
}

/// Cost model binding a model configuration to a device.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Device characteristics.
    pub device: DeviceSpec,
    /// Model configuration.
    pub model: MoeModelConfig,
}

impl CostModel {
    /// Creates a cost model.
    pub fn new(device: DeviceSpec, model: MoeModelConfig) -> Self {
        CostModel { device, model }
    }

    /// FLOPs of the attention block forward pass over `tokens` tokens
    /// arranged in sequences of the model's `seq_len`: four projections
    /// (`4 x 2 H^2` per token) plus score/value matmuls
    /// (`2 x 2 S H` per token).
    fn attention_flops(&self, tokens: usize) -> f64 {
        let h = self.model.hidden as f64;
        let s = self.model.attn_span as f64;
        // Two FLOPs per parameter-MAC: the projection volume follows
        // the (possibly cross-attention-bearing) parameter count.
        let proj = 2.0 * self.model.attention_params() as f64;
        tokens as f64 * (proj + 4.0 * s * h + self.device.aux_flops_per_token)
    }

    /// Attention forward time for `tokens` local tokens.
    pub fn attention_fwd(&self, tokens: usize) -> SimDuration {
        self.device.gemm_time(self.attention_flops(tokens))
    }

    /// Attention backward time (~2x forward).
    pub fn attention_bwd(&self, tokens: usize) -> SimDuration {
        self.device.gemm_time(2.0 * self.attention_flops(tokens))
    }

    /// Gating network forward time: one `H x E` matmul per token plus a
    /// top-k selection pass.
    pub fn gate_fwd(&self, tokens: usize) -> SimDuration {
        let h = self.model.hidden as f64;
        let e = self.model.experts as f64;
        self.device.gemm_time(tokens as f64 * 2.0 * h * e)
            + self.device.mem_time(tokens as f64 * e * 4.0)
    }

    /// Gating backward time.
    pub fn gate_bwd(&self, tokens: usize) -> SimDuration {
        let h = self.model.hidden as f64;
        let e = self.model.experts as f64;
        self.device.gemm_time(tokens as f64 * 4.0 * h * e)
    }

    /// One expert's FFN forward over `tokens` routed tokens:
    /// `2 x 2 H F` FLOPs per token.
    pub fn expert_fwd(&self, tokens: usize) -> SimDuration {
        let h = self.model.hidden as f64;
        let f = self.model.ffn_hidden as f64;
        self.device.gemm_time(tokens as f64 * 4.0 * h * f)
    }

    /// One expert's FFN backward (~2x forward).
    pub fn expert_bwd(&self, tokens: usize) -> SimDuration {
        let h = self.model.hidden as f64;
        let f = self.model.ffn_hidden as f64;
        self.device.gemm_time(tokens as f64 * 8.0 * h * f)
    }

    /// Combine (weighted sum + reshape) time: memory-bound over the
    /// routed activations.
    pub fn combine(&self, tokens: usize) -> SimDuration {
        let bytes = (tokens * self.model.top_k * self.model.hidden * self.model.dtype_bytes) as f64;
        self.device.mem_time(3.0 * bytes)
    }

    /// Optimizer step over this device's resident parameters
    /// (memory-bound: read param+grad+state, write param+state).
    pub fn optimizer_step(&self) -> SimDuration {
        let bytes = (self.model.params_per_device() * self.model.dtype_bytes) as f64;
        self.device.mem_time(6.0 * bytes)
    }

    /// Time to swap one expert's weights between host DRAM and the
    /// device over PCIe at `pcie_bw` bytes/s.
    pub fn expert_swap(&self, pcie_bw: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.model.expert_bytes() / pcie_bw)
            + self.device.kernel_overhead
    }

    /// Tensor partition/concatenation overhead for a chunk of `bytes`
    /// (the `chunk`/`cat` calls in §6.1) — one memory pass each way.
    pub fn partition_overhead(&self, bytes: f64) -> SimDuration {
        self.device.mem_time(2.0 * bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm() -> CostModel {
        CostModel::new(DeviceSpec::a100(), MoeModelConfig::transformer_xl(12, 16))
    }

    #[test]
    fn costs_scale_linearly_with_tokens() {
        let c = cm();
        let overhead = c.device.kernel_overhead.as_secs_f64();
        for (a, b) in [
            (c.attention_fwd(1000), c.attention_fwd(2000)),
            (c.expert_fwd(1000), c.expert_fwd(2000)),
            (c.gate_bwd(1000), c.gate_bwd(2000)),
        ] {
            let pure_a = a.as_secs_f64() - overhead;
            let pure_b = b.as_secs_f64() - overhead;
            assert!((pure_b / pure_a - 2.0).abs() < 0.05, "{pure_a} vs {pure_b}");
        }
    }

    #[test]
    fn backward_costs_about_twice_forward() {
        let c = cm();
        let fwd = c.expert_fwd(4096).as_secs_f64();
        let bwd = c.expert_bwd(4096).as_secs_f64();
        assert!((bwd / fwd - 2.0).abs() < 0.25, "ratio {}", bwd / fwd);
    }

    #[test]
    fn expert_ffn_magnitude_is_plausible() {
        // 4096 tokens through a 512x2048 FFN on an A100: ~0.2ms of math.
        let c = cm();
        let t = c.expert_fwd(4096).as_secs_f64();
        assert!(t > 20e-6 && t < 2e-3, "expert fwd {t}s");
    }

    #[test]
    fn zero_tokens_cost_only_launch_overhead() {
        let c = cm();
        assert_eq!(c.expert_fwd(0), c.device.kernel_overhead);
    }

    #[test]
    fn combine_scales_with_topk() {
        let train = cm();
        let infer = CostModel::new(
            DeviceSpec::a100(),
            MoeModelConfig::transformer_xl(12, 16).for_inference(),
        );
        assert!(train.combine(4096) > infer.combine(4096));
    }

    #[test]
    fn expert_swap_time() {
        let c = cm();
        // ~4.2M params x 2B / 24 GB/s ~ 0.35ms.
        let t = c.expert_swap(24e9).as_secs_f64();
        assert!(t > 5e-5 && t < 5e-3, "swap {t}s");
    }

    #[test]
    fn optimizer_step_nontrivial() {
        let c = cm();
        let t = c.optimizer_step().as_secs_f64();
        assert!(t > 1e-4, "optimizer {t}s too fast");
    }
}
