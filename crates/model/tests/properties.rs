//! Randomized property tests of routing, placement, and op-graph
//! construction, swept over deterministically seeded cases.

use lina_model::{
    assign_replicas, balanced_routing, build_train_step, BatchShape, CostModel, DeviceSpec,
    ExpertPlacement, LayerRouting, MoeModelConfig, OpKind, TrainStepOptions,
};
use lina_netsim::{ClusterSpec, DeviceId, Topology};
use lina_simcore::Rng;

fn topo16() -> Topology {
    Topology::new(ClusterSpec::paper_testbed())
}

/// Dispatch conserves every selection and computes only on hosts, for
/// arbitrary routings and replica structures.
#[test]
fn dispatch_conservation() {
    let mut meta = Rng::new(0xD15);
    for _ in 0..48 {
        let topo = topo16();
        let counts: Vec<Vec<usize>> = (0..16)
            .map(|_| (0..16).map(|_| meta.index(500)).collect())
            .collect();
        let routing = LayerRouting {
            experts: 16,
            counts,
        };
        let hosts: Vec<Vec<DeviceId>> = (0..16)
            .map(|_| {
                let mut hs = vec![DeviceId(meta.below(16) as u32)];
                for _ in 0..2 {
                    let d = DeviceId(meta.below(16) as u32);
                    if !hs.contains(&d) {
                        hs.push(d);
                    }
                }
                hs
            })
            .collect();
        let placement = ExpertPlacement::uniform(hosts);
        let plan = assign_replicas(&routing, &placement, &topo);
        let moved: usize = plan.sizes.iter().flatten().sum();
        let computed: usize = plan.compute.iter().flatten().sum();
        assert_eq!(moved, routing.total());
        assert_eq!(computed, routing.total());
        for d in 0..16 {
            for e in 0..16 {
                if plan.compute[d][e] > 0 {
                    assert!(placement.hosts[e].contains(&DeviceId(d as u32)));
                }
            }
        }
    }
}

/// Replica load balance: with equal shares, no replica of an expert
/// carries more than its fair share plus the soft-cap slack.
#[test]
fn replica_loads_respect_soft_caps() {
    let mut meta = Rng::new(0x10AD);
    for _ in 0..48 {
        let per_device = 1 + meta.index(4);
        let tokens = 64 + meta.index(1984);
        let topo = topo16();
        let placement = ExpertPlacement::packed(16, &topo, per_device);
        let routing = LayerRouting::balanced(16, 16, tokens, 2);
        let plan = assign_replicas(&routing, &placement, &topo);
        for e in 0..16 {
            let total = routing.tokens_to_expert(e);
            let replicas = placement.hosts[e].len();
            let fair = total.div_ceil(replicas);
            for host in &placement.hosts[e] {
                let load = plan.compute[host.0 as usize][e];
                assert!(
                    load <= fair + fair / 2 + 1,
                    "expert {e} replica {host:?}: {load} > soft cap of {fair}"
                );
            }
        }
    }
}

/// Training-step graphs are well-formed for every scheme knob
/// combination: acyclic, complete, and conserving gradient volume.
#[test]
fn train_graphs_are_well_formed() {
    let mut meta = Rng::new(0x93A9);
    for _ in 0..24 {
        let experts = 1usize << (1 + meta.index(4));
        let seqs = 1 + meta.index(8);
        let partition_mb = meta.uniform(5.0, 60.0);
        let pipeline = meta.bernoulli(0.5);
        let model = MoeModelConfig::transformer_xl(2, experts);
        let topo = Topology::new(ClusterSpec::with_total_gpus(experts));
        let cost = CostModel::new(DeviceSpec::a100(), model.clone());
        let batch = BatchShape {
            seqs_per_device: seqs * 4,
            seq_len: model.seq_len,
        };
        let routing = balanced_routing(&model, experts, batch);
        let mut opts = TrainStepOptions::lina(ExpertPlacement::one_per_device(experts, experts));
        opts.a2a_chunking = lina_model::A2aChunking::FixedBytes(partition_mb * 1e6);
        opts.grad_comm = lina_model::GradCommMode::Partitioned {
            chunk_bytes: partition_mb * 1e6,
        };
        opts.pipeline_ffn = pipeline;
        let graph = build_train_step(&cost, &topo, batch, &routing, &opts);
        graph.validate();
        // Allreduce volume equals the non-expert gradient volume.
        let total: f64 = graph
            .ops()
            .iter()
            .filter_map(|op| match &op.kind {
                OpKind::Comm { meta, .. } if meta.class == lina_model::CommClass::Allreduce => {
                    Some(meta.bytes_per_device)
                }
                _ => None,
            })
            .sum();
        let expected = (model.non_expert_params() * model.grad_dtype_bytes) as f64;
        assert!((total - expected).abs() / expected < 1e-6);
    }
}

/// Balanced routing is exactly conserving and at most `devices` apart.
#[test]
fn balanced_routing_is_fair() {
    let mut meta = Rng::new(0xFA19);
    for _ in 0..128 {
        let devices = 1 + meta.index(31);
        let experts = 1 + meta.index(31);
        let tokens = meta.index(5000);
        let k = 1 + meta.index(2);
        let r = LayerRouting::balanced(devices, experts, tokens, k);
        assert_eq!(r.total(), devices * tokens * k);
        let counts: Vec<usize> = (0..experts).map(|e| r.tokens_to_expert(e)).collect();
        let max = counts.iter().max().expect("experts > 0");
        let min = counts.iter().min().expect("experts > 0");
        assert!(max - min <= devices);
    }
}
