//! Property-based tests of routing, placement, and op-graph
//! construction.

use proptest::prelude::*;

use lina_model::{
    assign_replicas, balanced_routing, build_train_step, BatchShape, CostModel, DeviceSpec,
    ExpertPlacement, LayerRouting, MoeModelConfig, OpKind, TrainStepOptions,
};
use lina_netsim::{ClusterSpec, DeviceId, Topology};

fn topo16() -> Topology {
    Topology::new(ClusterSpec::paper_testbed())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dispatch conserves every selection and computes only on hosts,
    /// for arbitrary routings and replica structures.
    #[test]
    fn dispatch_conservation(
        counts in proptest::collection::vec(
            proptest::collection::vec(0usize..500, 16),
            16,
        ),
        host_picks in proptest::collection::vec(
            (0u32..16, 0u32..16, 0u32..16),
            16,
        ),
    ) {
        let topo = topo16();
        let routing = LayerRouting { experts: 16, counts };
        let hosts: Vec<Vec<DeviceId>> = host_picks
            .into_iter()
            .map(|(a, b, c)| {
                let mut hs = vec![DeviceId(a)];
                for d in [DeviceId(b), DeviceId(c)] {
                    if !hs.contains(&d) {
                        hs.push(d);
                    }
                }
                hs
            })
            .collect();
        let placement = ExpertPlacement::uniform(hosts);
        let plan = assign_replicas(&routing, &placement, &topo);
        let moved: usize = plan.sizes.iter().flatten().sum();
        let computed: usize = plan.compute.iter().flatten().sum();
        prop_assert_eq!(moved, routing.total());
        prop_assert_eq!(computed, routing.total());
        for d in 0..16 {
            for e in 0..16 {
                if plan.compute[d][e] > 0 {
                    prop_assert!(placement.hosts[e].contains(&DeviceId(d as u32)));
                }
            }
        }
    }

    /// Replica load balance: with equal shares, no replica of an expert
    /// carries more than its fair share plus the soft-cap slack.
    #[test]
    fn replica_loads_respect_soft_caps(
        per_device in 1usize..5,
        tokens in 64usize..2048,
    ) {
        let topo = topo16();
        let placement = ExpertPlacement::packed(16, &topo, per_device);
        let routing = LayerRouting::balanced(16, 16, tokens, 2);
        let plan = assign_replicas(&routing, &placement, &topo);
        for e in 0..16 {
            let total = routing.tokens_to_expert(e);
            let replicas = placement.hosts[e].len();
            let fair = total.div_ceil(replicas);
            for host in &placement.hosts[e] {
                let load = plan.compute[host.0 as usize][e];
                prop_assert!(
                    load <= fair + fair / 2 + 1,
                    "expert {e} replica {host:?}: {load} > soft cap of {fair}"
                );
            }
        }
    }

    /// Training-step graphs are well-formed for every scheme knob
    /// combination: acyclic, complete, and conserving gradient volume.
    #[test]
    fn train_graphs_are_well_formed(
        experts_pow in 1u32..5,
        seqs in 1usize..9,
        partition_mb in 5.0f64..60.0,
        pipeline in any::<bool>(),
    ) {
        let experts = 1usize << experts_pow;
        let model = MoeModelConfig::transformer_xl(2, experts);
        let topo = Topology::new(ClusterSpec::with_total_gpus(experts));
        let cost = CostModel::new(DeviceSpec::a100(), model.clone());
        let batch = BatchShape { seqs_per_device: seqs * 4, seq_len: model.seq_len };
        let routing = balanced_routing(&model, experts, batch);
        let mut opts = TrainStepOptions::lina(ExpertPlacement::one_per_device(
            experts, experts,
        ));
        opts.a2a_chunking = lina_model::A2aChunking::FixedBytes(partition_mb * 1e6);
        opts.grad_comm = lina_model::GradCommMode::Partitioned {
            chunk_bytes: partition_mb * 1e6,
        };
        opts.pipeline_ffn = pipeline;
        let graph = build_train_step(&cost, &topo, batch, &routing, &opts);
        graph.validate();
        // Allreduce volume equals the non-expert gradient volume.
        let total: f64 = graph
            .ops()
            .iter()
            .filter_map(|op| match &op.kind {
                OpKind::Comm { meta, .. }
                    if meta.class == lina_model::CommClass::Allreduce =>
                {
                    Some(meta.bytes_per_device)
                }
                _ => None,
            })
            .sum();
        let expected =
            (model.non_expert_params() * model.grad_dtype_bytes) as f64;
        prop_assert!((total - expected).abs() / expected < 1e-6);
    }

    /// Balanced routing is exactly conserving and at most 1 apart.
    #[test]
    fn balanced_routing_is_fair(devices in 1usize..32, experts in 1usize..32, tokens in 0usize..5000, k in 1usize..3) {
        let r = LayerRouting::balanced(devices, experts, tokens, k);
        prop_assert_eq!(r.total(), devices * tokens * k);
        let counts: Vec<usize> = (0..experts).map(|e| r.tokens_to_expert(e)).collect();
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        prop_assert!(max - min <= devices);
    }
}
