//! # lina
//!
//! Meta-crate re-exporting the whole Lina reproduction workspace.
pub use lina_baselines as baselines;
pub use lina_core as core;
pub use lina_model as model;
pub use lina_netsim as netsim;
pub use lina_runner as runner;
pub use lina_serve as serve;
pub use lina_simcore as simcore;
pub use lina_workload as workload;
