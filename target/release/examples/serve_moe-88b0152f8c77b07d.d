/root/repo/target/release/examples/serve_moe-88b0152f8c77b07d.d: examples/serve_moe.rs

/root/repo/target/release/examples/serve_moe-88b0152f8c77b07d: examples/serve_moe.rs

examples/serve_moe.rs:
