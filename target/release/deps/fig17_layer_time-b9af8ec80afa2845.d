/root/repo/target/release/deps/fig17_layer_time-b9af8ec80afa2845.d: crates/bench/src/bin/fig17_layer_time.rs

/root/repo/target/release/deps/fig17_layer_time-b9af8ec80afa2845: crates/bench/src/bin/fig17_layer_time.rs

crates/bench/src/bin/fig17_layer_time.rs:
