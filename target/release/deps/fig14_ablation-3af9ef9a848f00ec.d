/root/repo/target/release/deps/fig14_ablation-3af9ef9a848f00ec.d: crates/bench/src/bin/fig14_ablation.rs

/root/repo/target/release/deps/fig14_ablation-3af9ef9a848f00ec: crates/bench/src/bin/fig14_ablation.rs

crates/bench/src/bin/fig14_ablation.rs:
