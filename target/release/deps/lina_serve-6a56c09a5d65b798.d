/root/repo/target/release/deps/lina_serve-6a56c09a5d65b798.d: crates/serve/src/lib.rs crates/serve/src/arrival.rs crates/serve/src/batcher.rs crates/serve/src/engine.rs crates/serve/src/request.rs crates/serve/src/slo.rs

/root/repo/target/release/deps/lina_serve-6a56c09a5d65b798: crates/serve/src/lib.rs crates/serve/src/arrival.rs crates/serve/src/batcher.rs crates/serve/src/engine.rs crates/serve/src/request.rs crates/serve/src/slo.rs

crates/serve/src/lib.rs:
crates/serve/src/arrival.rs:
crates/serve/src/batcher.rs:
crates/serve/src/engine.rs:
crates/serve/src/request.rs:
crates/serve/src/slo.rs:
