/root/repo/target/release/deps/fig13_a2a_speedup-c3bf4770de906a7b.d: crates/bench/src/bin/fig13_a2a_speedup.rs

/root/repo/target/release/deps/fig13_a2a_speedup-c3bf4770de906a7b: crates/bench/src/bin/fig13_a2a_speedup.rs

crates/bench/src/bin/fig13_a2a_speedup.rs:
