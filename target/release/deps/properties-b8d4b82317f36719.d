/root/repo/target/release/deps/properties-b8d4b82317f36719.d: crates/serve/tests/properties.rs

/root/repo/target/release/deps/properties-b8d4b82317f36719: crates/serve/tests/properties.rs

crates/serve/tests/properties.rs:
