/root/repo/target/release/deps/fig11_12_layer_speedup-0d0c7f8fdfa7ed5a.d: crates/bench/src/bin/fig11_12_layer_speedup.rs

/root/repo/target/release/deps/fig11_12_layer_speedup-0d0c7f8fdfa7ed5a: crates/bench/src/bin/fig11_12_layer_speedup.rs

crates/bench/src/bin/fig11_12_layer_speedup.rs:
