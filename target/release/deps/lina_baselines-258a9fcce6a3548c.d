/root/repo/target/release/deps/lina_baselines-258a9fcce6a3548c.d: crates/baselines/src/lib.rs crates/baselines/src/policies.rs crates/baselines/src/schemes.rs

/root/repo/target/release/deps/liblina_baselines-258a9fcce6a3548c.rlib: crates/baselines/src/lib.rs crates/baselines/src/policies.rs crates/baselines/src/schemes.rs

/root/repo/target/release/deps/liblina_baselines-258a9fcce6a3548c.rmeta: crates/baselines/src/lib.rs crates/baselines/src/policies.rs crates/baselines/src/schemes.rs

crates/baselines/src/lib.rs:
crates/baselines/src/policies.rs:
crates/baselines/src/schemes.rs:
