/root/repo/target/release/deps/fig7_schedules-8fc73c3d3c5d885b.d: crates/bench/src/bin/fig7_schedules.rs

/root/repo/target/release/deps/fig7_schedules-8fc73c3d3c5d885b: crates/bench/src/bin/fig7_schedules.rs

crates/bench/src/bin/fig7_schedules.rs:
