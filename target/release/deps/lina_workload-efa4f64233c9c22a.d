/root/repo/target/release/deps/lina_workload-efa4f64233c9c22a.d: crates/workload/src/lib.rs crates/workload/src/gating.rs crates/workload/src/patterns.rs crates/workload/src/spec.rs crates/workload/src/tokens.rs

/root/repo/target/release/deps/liblina_workload-efa4f64233c9c22a.rlib: crates/workload/src/lib.rs crates/workload/src/gating.rs crates/workload/src/patterns.rs crates/workload/src/spec.rs crates/workload/src/tokens.rs

/root/repo/target/release/deps/liblina_workload-efa4f64233c9c22a.rmeta: crates/workload/src/lib.rs crates/workload/src/gating.rs crates/workload/src/patterns.rs crates/workload/src/spec.rs crates/workload/src/tokens.rs

crates/workload/src/lib.rs:
crates/workload/src/gating.rs:
crates/workload/src/patterns.rs:
crates/workload/src/spec.rs:
crates/workload/src/tokens.rs:
