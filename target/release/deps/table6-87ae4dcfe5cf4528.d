/root/repo/target/release/deps/table6-87ae4dcfe5cf4528.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-87ae4dcfe5cf4528: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
