/root/repo/target/release/deps/table1-4cff4747d7eaf377.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-4cff4747d7eaf377: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
