/root/repo/target/release/deps/fig19_accuracy-55d7c432a58b81ea.d: crates/bench/src/bin/fig19_accuracy.rs

/root/repo/target/release/deps/fig19_accuracy-55d7c432a58b81ea: crates/bench/src/bin/fig19_accuracy.rs

crates/bench/src/bin/fig19_accuracy.rs:
