/root/repo/target/release/deps/lina_core-0c828621220dbe49.d: crates/core/src/lib.rs crates/core/src/inference/mod.rs crates/core/src/inference/estimator.rs crates/core/src/inference/placement.rs crates/core/src/inference/twophase.rs crates/core/src/policy.rs crates/core/src/training/mod.rs crates/core/src/training/packing.rs crates/core/src/training/scheduler.rs

/root/repo/target/release/deps/liblina_core-0c828621220dbe49.rlib: crates/core/src/lib.rs crates/core/src/inference/mod.rs crates/core/src/inference/estimator.rs crates/core/src/inference/placement.rs crates/core/src/inference/twophase.rs crates/core/src/policy.rs crates/core/src/training/mod.rs crates/core/src/training/packing.rs crates/core/src/training/scheduler.rs

/root/repo/target/release/deps/liblina_core-0c828621220dbe49.rmeta: crates/core/src/lib.rs crates/core/src/inference/mod.rs crates/core/src/inference/estimator.rs crates/core/src/inference/placement.rs crates/core/src/inference/twophase.rs crates/core/src/policy.rs crates/core/src/training/mod.rs crates/core/src/training/packing.rs crates/core/src/training/scheduler.rs

crates/core/src/lib.rs:
crates/core/src/inference/mod.rs:
crates/core/src/inference/estimator.rs:
crates/core/src/inference/placement.rs:
crates/core/src/inference/twophase.rs:
crates/core/src/policy.rs:
crates/core/src/training/mod.rs:
crates/core/src/training/packing.rs:
crates/core/src/training/scheduler.rs:
