/root/repo/target/release/deps/lina_netsim-874416ade3f3e742.d: crates/netsim/src/lib.rs crates/netsim/src/collectives.rs crates/netsim/src/fairshare.rs crates/netsim/src/memory.rs crates/netsim/src/network.rs crates/netsim/src/topology.rs

/root/repo/target/release/deps/liblina_netsim-874416ade3f3e742.rlib: crates/netsim/src/lib.rs crates/netsim/src/collectives.rs crates/netsim/src/fairshare.rs crates/netsim/src/memory.rs crates/netsim/src/network.rs crates/netsim/src/topology.rs

/root/repo/target/release/deps/liblina_netsim-874416ade3f3e742.rmeta: crates/netsim/src/lib.rs crates/netsim/src/collectives.rs crates/netsim/src/fairshare.rs crates/netsim/src/memory.rs crates/netsim/src/network.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/collectives.rs:
crates/netsim/src/fairshare.rs:
crates/netsim/src/memory.rs:
crates/netsim/src/network.rs:
crates/netsim/src/topology.rs:
