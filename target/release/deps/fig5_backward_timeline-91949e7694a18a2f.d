/root/repo/target/release/deps/fig5_backward_timeline-91949e7694a18a2f.d: crates/bench/src/bin/fig5_backward_timeline.rs

/root/repo/target/release/deps/fig5_backward_timeline-91949e7694a18a2f: crates/bench/src/bin/fig5_backward_timeline.rs

crates/bench/src/bin/fig5_backward_timeline.rs:
