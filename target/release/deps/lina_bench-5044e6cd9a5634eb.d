/root/repo/target/release/deps/lina_bench-5044e6cd9a5634eb.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/liblina_bench-5044e6cd9a5634eb.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/liblina_bench-5044e6cd9a5634eb.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
