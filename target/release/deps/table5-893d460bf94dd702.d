/root/repo/target/release/deps/table5-893d460bf94dd702.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-893d460bf94dd702: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
