/root/repo/target/release/deps/lina_model-37c0bed4c118d306.d: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/graph.rs crates/model/src/passes.rs crates/model/src/routing.rs

/root/repo/target/release/deps/liblina_model-37c0bed4c118d306.rlib: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/graph.rs crates/model/src/passes.rs crates/model/src/routing.rs

/root/repo/target/release/deps/liblina_model-37c0bed4c118d306.rmeta: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/graph.rs crates/model/src/passes.rs crates/model/src/routing.rs

crates/model/src/lib.rs:
crates/model/src/config.rs:
crates/model/src/cost.rs:
crates/model/src/graph.rs:
crates/model/src/passes.rs:
crates/model/src/routing.rs:
