/root/repo/target/release/deps/serve_load_sweep-c0a6e4e58624a3e5.d: crates/bench/src/bin/serve_load_sweep.rs

/root/repo/target/release/deps/serve_load_sweep-c0a6e4e58624a3e5: crates/bench/src/bin/serve_load_sweep.rs

crates/bench/src/bin/serve_load_sweep.rs:
