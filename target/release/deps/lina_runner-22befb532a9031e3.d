/root/repo/target/release/deps/lina_runner-22befb532a9031e3.d: crates/runner/src/lib.rs crates/runner/src/engine.rs crates/runner/src/inference.rs crates/runner/src/session.rs crates/runner/src/sweep.rs crates/runner/src/train.rs

/root/repo/target/release/deps/liblina_runner-22befb532a9031e3.rlib: crates/runner/src/lib.rs crates/runner/src/engine.rs crates/runner/src/inference.rs crates/runner/src/session.rs crates/runner/src/sweep.rs crates/runner/src/train.rs

/root/repo/target/release/deps/liblina_runner-22befb532a9031e3.rmeta: crates/runner/src/lib.rs crates/runner/src/engine.rs crates/runner/src/inference.rs crates/runner/src/session.rs crates/runner/src/sweep.rs crates/runner/src/train.rs

crates/runner/src/lib.rs:
crates/runner/src/engine.rs:
crates/runner/src/inference.rs:
crates/runner/src/session.rs:
crates/runner/src/sweep.rs:
crates/runner/src/train.rs:
