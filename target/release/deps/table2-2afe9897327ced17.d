/root/repo/target/release/deps/table2-2afe9897327ced17.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-2afe9897327ced17: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
