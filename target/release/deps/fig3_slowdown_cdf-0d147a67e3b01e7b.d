/root/repo/target/release/deps/fig3_slowdown_cdf-0d147a67e3b01e7b.d: crates/bench/src/bin/fig3_slowdown_cdf.rs

/root/repo/target/release/deps/fig3_slowdown_cdf-0d147a67e3b01e7b: crates/bench/src/bin/fig3_slowdown_cdf.rs

crates/bench/src/bin/fig3_slowdown_cdf.rs:
