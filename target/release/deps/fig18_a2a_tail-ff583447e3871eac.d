/root/repo/target/release/deps/fig18_a2a_tail-ff583447e3871eac.d: crates/bench/src/bin/fig18_a2a_tail.rs

/root/repo/target/release/deps/fig18_a2a_tail-ff583447e3871eac: crates/bench/src/bin/fig18_a2a_tail.rs

crates/bench/src/bin/fig18_a2a_tail.rs:
