/root/repo/target/release/deps/fig10_step_speedup-208240c77221b4c7.d: crates/bench/src/bin/fig10_step_speedup.rs

/root/repo/target/release/deps/fig10_step_speedup-208240c77221b4c7: crates/bench/src/bin/fig10_step_speedup.rs

crates/bench/src/bin/fig10_step_speedup.rs:
