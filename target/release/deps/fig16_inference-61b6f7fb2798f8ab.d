/root/repo/target/release/deps/fig16_inference-61b6f7fb2798f8ab.d: crates/bench/src/bin/fig16_inference.rs

/root/repo/target/release/deps/fig16_inference-61b6f7fb2798f8ab: crates/bench/src/bin/fig16_inference.rs

crates/bench/src/bin/fig16_inference.rs:
