/root/repo/target/release/deps/fig8_microops-2332ad079d830093.d: crates/bench/src/bin/fig8_microops.rs

/root/repo/target/release/deps/fig8_microops-2332ad079d830093: crates/bench/src/bin/fig8_microops.rs

crates/bench/src/bin/fig8_microops.rs:
