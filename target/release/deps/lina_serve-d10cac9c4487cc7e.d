/root/repo/target/release/deps/lina_serve-d10cac9c4487cc7e.d: crates/serve/src/lib.rs crates/serve/src/arrival.rs crates/serve/src/batcher.rs crates/serve/src/engine.rs crates/serve/src/request.rs crates/serve/src/slo.rs

/root/repo/target/release/deps/liblina_serve-d10cac9c4487cc7e.rlib: crates/serve/src/lib.rs crates/serve/src/arrival.rs crates/serve/src/batcher.rs crates/serve/src/engine.rs crates/serve/src/request.rs crates/serve/src/slo.rs

/root/repo/target/release/deps/liblina_serve-d10cac9c4487cc7e.rmeta: crates/serve/src/lib.rs crates/serve/src/arrival.rs crates/serve/src/batcher.rs crates/serve/src/engine.rs crates/serve/src/request.rs crates/serve/src/slo.rs

crates/serve/src/lib.rs:
crates/serve/src/arrival.rs:
crates/serve/src/batcher.rs:
crates/serve/src/engine.rs:
crates/serve/src/request.rs:
crates/serve/src/slo.rs:
