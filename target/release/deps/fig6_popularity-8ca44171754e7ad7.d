/root/repo/target/release/deps/fig6_popularity-8ca44171754e7ad7.d: crates/bench/src/bin/fig6_popularity.rs

/root/repo/target/release/deps/fig6_popularity-8ca44171754e7ad7: crates/bench/src/bin/fig6_popularity.rs

crates/bench/src/bin/fig6_popularity.rs:
