/root/repo/target/release/deps/lina_simcore-9b8f21cab4185781.d: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/table.rs crates/simcore/src/time.rs crates/simcore/src/timeline.rs

/root/repo/target/release/deps/liblina_simcore-9b8f21cab4185781.rlib: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/table.rs crates/simcore/src/time.rs crates/simcore/src/timeline.rs

/root/repo/target/release/deps/liblina_simcore-9b8f21cab4185781.rmeta: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/table.rs crates/simcore/src/time.rs crates/simcore/src/timeline.rs

crates/simcore/src/lib.rs:
crates/simcore/src/events.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/table.rs:
crates/simcore/src/time.rs:
crates/simcore/src/timeline.rs:
