/root/repo/target/release/deps/end_to_end_serving-24aa7ae338e5e510.d: tests/end_to_end_serving.rs

/root/repo/target/release/deps/end_to_end_serving-24aa7ae338e5e510: tests/end_to_end_serving.rs

tests/end_to_end_serving.rs:
