/root/repo/target/release/deps/table4-9b60dac12c3f17e9.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-9b60dac12c3f17e9: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
