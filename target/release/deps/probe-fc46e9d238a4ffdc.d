/root/repo/target/release/deps/probe-fc46e9d238a4ffdc.d: crates/bench/src/bin/probe.rs

/root/repo/target/release/deps/probe-fc46e9d238a4ffdc: crates/bench/src/bin/probe.rs

crates/bench/src/bin/probe.rs:
