/root/repo/target/release/deps/table3-48d512b65ca04b96.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-48d512b65ca04b96: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
