/root/repo/target/release/deps/fig15_partition_size-916c480d0ee34e9f.d: crates/bench/src/bin/fig15_partition_size.rs

/root/repo/target/release/deps/fig15_partition_size-916c480d0ee34e9f: crates/bench/src/bin/fig15_partition_size.rs

crates/bench/src/bin/fig15_partition_size.rs:
