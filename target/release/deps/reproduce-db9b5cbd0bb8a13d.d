/root/repo/target/release/deps/reproduce-db9b5cbd0bb8a13d.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-db9b5cbd0bb8a13d: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
