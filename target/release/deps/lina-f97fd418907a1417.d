/root/repo/target/release/deps/lina-f97fd418907a1417.d: src/lib.rs

/root/repo/target/release/deps/liblina-f97fd418907a1417.rlib: src/lib.rs

/root/repo/target/release/deps/liblina-f97fd418907a1417.rmeta: src/lib.rs

src/lib.rs:
