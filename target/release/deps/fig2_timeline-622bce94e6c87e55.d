/root/repo/target/release/deps/fig2_timeline-622bce94e6c87e55.d: crates/bench/src/bin/fig2_timeline.rs

/root/repo/target/release/deps/fig2_timeline-622bce94e6c87e55: crates/bench/src/bin/fig2_timeline.rs

crates/bench/src/bin/fig2_timeline.rs:
