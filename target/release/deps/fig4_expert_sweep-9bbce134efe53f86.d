/root/repo/target/release/deps/fig4_expert_sweep-9bbce134efe53f86.d: crates/bench/src/bin/fig4_expert_sweep.rs

/root/repo/target/release/deps/fig4_expert_sweep-9bbce134efe53f86: crates/bench/src/bin/fig4_expert_sweep.rs

crates/bench/src/bin/fig4_expert_sweep.rs:
