/root/repo/target/release/deps/fig9_pattern-7f86b6c9b0769094.d: crates/bench/src/bin/fig9_pattern.rs

/root/repo/target/release/deps/fig9_pattern-7f86b6c9b0769094: crates/bench/src/bin/fig9_pattern.rs

crates/bench/src/bin/fig9_pattern.rs:
