/root/repo/target/debug/examples/train_moe-95f655110ad90b5a.d: examples/train_moe.rs

/root/repo/target/debug/examples/train_moe-95f655110ad90b5a: examples/train_moe.rs

examples/train_moe.rs:
