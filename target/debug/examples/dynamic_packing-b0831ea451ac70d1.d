/root/repo/target/debug/examples/dynamic_packing-b0831ea451ac70d1.d: examples/dynamic_packing.rs Cargo.toml

/root/repo/target/debug/examples/libdynamic_packing-b0831ea451ac70d1.rmeta: examples/dynamic_packing.rs Cargo.toml

examples/dynamic_packing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
