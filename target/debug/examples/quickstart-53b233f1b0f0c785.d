/root/repo/target/debug/examples/quickstart-53b233f1b0f0c785.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-53b233f1b0f0c785: examples/quickstart.rs

examples/quickstart.rs:
