/root/repo/target/debug/examples/serve_moe-8daa393793ba5892.d: examples/serve_moe.rs

/root/repo/target/debug/examples/serve_moe-8daa393793ba5892: examples/serve_moe.rs

examples/serve_moe.rs:
