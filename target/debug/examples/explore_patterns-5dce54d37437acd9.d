/root/repo/target/debug/examples/explore_patterns-5dce54d37437acd9.d: examples/explore_patterns.rs Cargo.toml

/root/repo/target/debug/examples/libexplore_patterns-5dce54d37437acd9.rmeta: examples/explore_patterns.rs Cargo.toml

examples/explore_patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
