/root/repo/target/debug/examples/explore_patterns-03ba5435a7c1020b.d: examples/explore_patterns.rs

/root/repo/target/debug/examples/explore_patterns-03ba5435a7c1020b: examples/explore_patterns.rs

examples/explore_patterns.rs:
