/root/repo/target/debug/examples/dynamic_packing-b00870922394bc85.d: examples/dynamic_packing.rs

/root/repo/target/debug/examples/dynamic_packing-b00870922394bc85: examples/dynamic_packing.rs

examples/dynamic_packing.rs:
