/root/repo/target/debug/examples/serve_moe-b3ec50ae4baaf213.d: examples/serve_moe.rs Cargo.toml

/root/repo/target/debug/examples/libserve_moe-b3ec50ae4baaf213.rmeta: examples/serve_moe.rs Cargo.toml

examples/serve_moe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
