/root/repo/target/debug/examples/train_moe-cd541a34aa3148d5.d: examples/train_moe.rs Cargo.toml

/root/repo/target/debug/examples/libtrain_moe-cd541a34aa3148d5.rmeta: examples/train_moe.rs Cargo.toml

examples/train_moe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
