/root/repo/target/debug/deps/lina-22946053181553d6.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblina-22946053181553d6.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
