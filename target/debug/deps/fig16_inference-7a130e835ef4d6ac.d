/root/repo/target/debug/deps/fig16_inference-7a130e835ef4d6ac.d: crates/bench/src/bin/fig16_inference.rs

/root/repo/target/debug/deps/fig16_inference-7a130e835ef4d6ac: crates/bench/src/bin/fig16_inference.rs

crates/bench/src/bin/fig16_inference.rs:
