/root/repo/target/debug/deps/properties-f58d0b1b67b4c683.d: crates/model/tests/properties.rs

/root/repo/target/debug/deps/properties-f58d0b1b67b4c683: crates/model/tests/properties.rs

crates/model/tests/properties.rs:
