/root/repo/target/debug/deps/lina_bench-4bc0efc4ec9d3915.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblina_bench-4bc0efc4ec9d3915.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblina_bench-4bc0efc4ec9d3915.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
