/root/repo/target/debug/deps/fig15_partition_size-645dd9d0e06efde6.d: crates/bench/src/bin/fig15_partition_size.rs

/root/repo/target/debug/deps/fig15_partition_size-645dd9d0e06efde6: crates/bench/src/bin/fig15_partition_size.rs

crates/bench/src/bin/fig15_partition_size.rs:
