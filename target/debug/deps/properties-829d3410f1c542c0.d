/root/repo/target/debug/deps/properties-829d3410f1c542c0.d: crates/workload/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-829d3410f1c542c0.rmeta: crates/workload/tests/properties.rs Cargo.toml

crates/workload/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
