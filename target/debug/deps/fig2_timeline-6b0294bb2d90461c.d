/root/repo/target/debug/deps/fig2_timeline-6b0294bb2d90461c.d: crates/bench/src/bin/fig2_timeline.rs

/root/repo/target/debug/deps/fig2_timeline-6b0294bb2d90461c: crates/bench/src/bin/fig2_timeline.rs

crates/bench/src/bin/fig2_timeline.rs:
