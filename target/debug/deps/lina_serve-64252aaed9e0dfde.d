/root/repo/target/debug/deps/lina_serve-64252aaed9e0dfde.d: crates/serve/src/lib.rs crates/serve/src/arrival.rs crates/serve/src/batcher.rs crates/serve/src/engine.rs crates/serve/src/request.rs crates/serve/src/slo.rs

/root/repo/target/debug/deps/liblina_serve-64252aaed9e0dfde.rlib: crates/serve/src/lib.rs crates/serve/src/arrival.rs crates/serve/src/batcher.rs crates/serve/src/engine.rs crates/serve/src/request.rs crates/serve/src/slo.rs

/root/repo/target/debug/deps/liblina_serve-64252aaed9e0dfde.rmeta: crates/serve/src/lib.rs crates/serve/src/arrival.rs crates/serve/src/batcher.rs crates/serve/src/engine.rs crates/serve/src/request.rs crates/serve/src/slo.rs

crates/serve/src/lib.rs:
crates/serve/src/arrival.rs:
crates/serve/src/batcher.rs:
crates/serve/src/engine.rs:
crates/serve/src/request.rs:
crates/serve/src/slo.rs:
