/root/repo/target/debug/deps/lina_core-1e66a942922eeb69.d: crates/core/src/lib.rs crates/core/src/inference/mod.rs crates/core/src/inference/estimator.rs crates/core/src/inference/placement.rs crates/core/src/inference/twophase.rs crates/core/src/policy.rs crates/core/src/training/mod.rs crates/core/src/training/packing.rs crates/core/src/training/scheduler.rs

/root/repo/target/debug/deps/lina_core-1e66a942922eeb69: crates/core/src/lib.rs crates/core/src/inference/mod.rs crates/core/src/inference/estimator.rs crates/core/src/inference/placement.rs crates/core/src/inference/twophase.rs crates/core/src/policy.rs crates/core/src/training/mod.rs crates/core/src/training/packing.rs crates/core/src/training/scheduler.rs

crates/core/src/lib.rs:
crates/core/src/inference/mod.rs:
crates/core/src/inference/estimator.rs:
crates/core/src/inference/placement.rs:
crates/core/src/inference/twophase.rs:
crates/core/src/policy.rs:
crates/core/src/training/mod.rs:
crates/core/src/training/packing.rs:
crates/core/src/training/scheduler.rs:
