/root/repo/target/debug/deps/fig3_slowdown_cdf-33dcaaa07832193b.d: crates/bench/src/bin/fig3_slowdown_cdf.rs

/root/repo/target/debug/deps/fig3_slowdown_cdf-33dcaaa07832193b: crates/bench/src/bin/fig3_slowdown_cdf.rs

crates/bench/src/bin/fig3_slowdown_cdf.rs:
