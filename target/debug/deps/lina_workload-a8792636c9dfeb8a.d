/root/repo/target/debug/deps/lina_workload-a8792636c9dfeb8a.d: crates/workload/src/lib.rs crates/workload/src/gating.rs crates/workload/src/patterns.rs crates/workload/src/spec.rs crates/workload/src/tokens.rs Cargo.toml

/root/repo/target/debug/deps/liblina_workload-a8792636c9dfeb8a.rmeta: crates/workload/src/lib.rs crates/workload/src/gating.rs crates/workload/src/patterns.rs crates/workload/src/spec.rs crates/workload/src/tokens.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/gating.rs:
crates/workload/src/patterns.rs:
crates/workload/src/spec.rs:
crates/workload/src/tokens.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
