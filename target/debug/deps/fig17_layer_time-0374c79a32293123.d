/root/repo/target/debug/deps/fig17_layer_time-0374c79a32293123.d: crates/bench/src/bin/fig17_layer_time.rs

/root/repo/target/debug/deps/fig17_layer_time-0374c79a32293123: crates/bench/src/bin/fig17_layer_time.rs

crates/bench/src/bin/fig17_layer_time.rs:
