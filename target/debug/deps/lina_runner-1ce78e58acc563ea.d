/root/repo/target/debug/deps/lina_runner-1ce78e58acc563ea.d: crates/runner/src/lib.rs crates/runner/src/engine.rs crates/runner/src/inference.rs crates/runner/src/session.rs crates/runner/src/sweep.rs crates/runner/src/train.rs

/root/repo/target/debug/deps/lina_runner-1ce78e58acc563ea: crates/runner/src/lib.rs crates/runner/src/engine.rs crates/runner/src/inference.rs crates/runner/src/session.rs crates/runner/src/sweep.rs crates/runner/src/train.rs

crates/runner/src/lib.rs:
crates/runner/src/engine.rs:
crates/runner/src/inference.rs:
crates/runner/src/session.rs:
crates/runner/src/sweep.rs:
crates/runner/src/train.rs:
