/root/repo/target/debug/deps/fig4_expert_sweep-f6edfb36631f9962.d: crates/bench/src/bin/fig4_expert_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_expert_sweep-f6edfb36631f9962.rmeta: crates/bench/src/bin/fig4_expert_sweep.rs Cargo.toml

crates/bench/src/bin/fig4_expert_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
