/root/repo/target/debug/deps/fig19_accuracy-94fc759ec19b85c2.d: crates/bench/src/bin/fig19_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libfig19_accuracy-94fc759ec19b85c2.rmeta: crates/bench/src/bin/fig19_accuracy.rs Cargo.toml

crates/bench/src/bin/fig19_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
