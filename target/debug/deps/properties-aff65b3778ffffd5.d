/root/repo/target/debug/deps/properties-aff65b3778ffffd5.d: crates/netsim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-aff65b3778ffffd5.rmeta: crates/netsim/tests/properties.rs Cargo.toml

crates/netsim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
