/root/repo/target/debug/deps/fig16_inference-68dc6fe514a80049.d: crates/bench/src/bin/fig16_inference.rs

/root/repo/target/debug/deps/fig16_inference-68dc6fe514a80049: crates/bench/src/bin/fig16_inference.rs

crates/bench/src/bin/fig16_inference.rs:
