/root/repo/target/debug/deps/fig14_ablation-f3e72ced3db9a8f7.d: crates/bench/src/bin/fig14_ablation.rs

/root/repo/target/debug/deps/fig14_ablation-f3e72ced3db9a8f7: crates/bench/src/bin/fig14_ablation.rs

crates/bench/src/bin/fig14_ablation.rs:
