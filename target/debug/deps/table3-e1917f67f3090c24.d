/root/repo/target/debug/deps/table3-e1917f67f3090c24.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-e1917f67f3090c24: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
