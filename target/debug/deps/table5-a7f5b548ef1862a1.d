/root/repo/target/debug/deps/table5-a7f5b548ef1862a1.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-a7f5b548ef1862a1: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
