/root/repo/target/debug/deps/lina_workload-2b556f75348afdad.d: crates/workload/src/lib.rs crates/workload/src/gating.rs crates/workload/src/patterns.rs crates/workload/src/spec.rs crates/workload/src/tokens.rs

/root/repo/target/debug/deps/lina_workload-2b556f75348afdad: crates/workload/src/lib.rs crates/workload/src/gating.rs crates/workload/src/patterns.rs crates/workload/src/spec.rs crates/workload/src/tokens.rs

crates/workload/src/lib.rs:
crates/workload/src/gating.rs:
crates/workload/src/patterns.rs:
crates/workload/src/spec.rs:
crates/workload/src/tokens.rs:
