/root/repo/target/debug/deps/table4-7f8c2aad3b88a203.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-7f8c2aad3b88a203: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
