/root/repo/target/debug/deps/fig8_microops-a97210e9a64921b2.d: crates/bench/src/bin/fig8_microops.rs

/root/repo/target/debug/deps/fig8_microops-a97210e9a64921b2: crates/bench/src/bin/fig8_microops.rs

crates/bench/src/bin/fig8_microops.rs:
