/root/repo/target/debug/deps/reproduce-066fbb16a34850ed.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-066fbb16a34850ed: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
