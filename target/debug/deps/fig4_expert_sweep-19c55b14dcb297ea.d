/root/repo/target/debug/deps/fig4_expert_sweep-19c55b14dcb297ea.d: crates/bench/src/bin/fig4_expert_sweep.rs

/root/repo/target/debug/deps/fig4_expert_sweep-19c55b14dcb297ea: crates/bench/src/bin/fig4_expert_sweep.rs

crates/bench/src/bin/fig4_expert_sweep.rs:
