/root/repo/target/debug/deps/serve_load_sweep-08802cb7c63e93b3.d: crates/bench/src/bin/serve_load_sweep.rs

/root/repo/target/debug/deps/serve_load_sweep-08802cb7c63e93b3: crates/bench/src/bin/serve_load_sweep.rs

crates/bench/src/bin/serve_load_sweep.rs:
