/root/repo/target/debug/deps/fig10_step_speedup-c6f5ac39108d07fa.d: crates/bench/src/bin/fig10_step_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_step_speedup-c6f5ac39108d07fa.rmeta: crates/bench/src/bin/fig10_step_speedup.rs Cargo.toml

crates/bench/src/bin/fig10_step_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
