/root/repo/target/debug/deps/fig6_popularity-3b6b973f0f7c3e54.d: crates/bench/src/bin/fig6_popularity.rs

/root/repo/target/debug/deps/fig6_popularity-3b6b973f0f7c3e54: crates/bench/src/bin/fig6_popularity.rs

crates/bench/src/bin/fig6_popularity.rs:
