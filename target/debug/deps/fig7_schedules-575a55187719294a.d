/root/repo/target/debug/deps/fig7_schedules-575a55187719294a.d: crates/bench/src/bin/fig7_schedules.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_schedules-575a55187719294a.rmeta: crates/bench/src/bin/fig7_schedules.rs Cargo.toml

crates/bench/src/bin/fig7_schedules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
