/root/repo/target/debug/deps/table5-e1fe006736c34b37.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-e1fe006736c34b37: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
