/root/repo/target/debug/deps/conservation-d757c237683249fa.d: tests/conservation.rs

/root/repo/target/debug/deps/conservation-d757c237683249fa: tests/conservation.rs

tests/conservation.rs:
