/root/repo/target/debug/deps/properties-77d3896065ff95b6.d: crates/netsim/tests/properties.rs

/root/repo/target/debug/deps/properties-77d3896065ff95b6: crates/netsim/tests/properties.rs

crates/netsim/tests/properties.rs:
