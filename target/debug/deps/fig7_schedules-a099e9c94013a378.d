/root/repo/target/debug/deps/fig7_schedules-a099e9c94013a378.d: crates/bench/src/bin/fig7_schedules.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_schedules-a099e9c94013a378.rmeta: crates/bench/src/bin/fig7_schedules.rs Cargo.toml

crates/bench/src/bin/fig7_schedules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
