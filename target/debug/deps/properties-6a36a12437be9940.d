/root/repo/target/debug/deps/properties-6a36a12437be9940.d: crates/simcore/tests/properties.rs

/root/repo/target/debug/deps/properties-6a36a12437be9940: crates/simcore/tests/properties.rs

crates/simcore/tests/properties.rs:
