/root/repo/target/debug/deps/lina_serve-5d59aafc87d7f34e.d: crates/serve/src/lib.rs crates/serve/src/arrival.rs crates/serve/src/batcher.rs crates/serve/src/engine.rs crates/serve/src/request.rs crates/serve/src/slo.rs

/root/repo/target/debug/deps/lina_serve-5d59aafc87d7f34e: crates/serve/src/lib.rs crates/serve/src/arrival.rs crates/serve/src/batcher.rs crates/serve/src/engine.rs crates/serve/src/request.rs crates/serve/src/slo.rs

crates/serve/src/lib.rs:
crates/serve/src/arrival.rs:
crates/serve/src/batcher.rs:
crates/serve/src/engine.rs:
crates/serve/src/request.rs:
crates/serve/src/slo.rs:
