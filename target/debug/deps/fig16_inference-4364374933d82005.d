/root/repo/target/debug/deps/fig16_inference-4364374933d82005.d: crates/bench/src/bin/fig16_inference.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_inference-4364374933d82005.rmeta: crates/bench/src/bin/fig16_inference.rs Cargo.toml

crates/bench/src/bin/fig16_inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
