/root/repo/target/debug/deps/fig19_accuracy-f40016ac73314bff.d: crates/bench/src/bin/fig19_accuracy.rs

/root/repo/target/debug/deps/fig19_accuracy-f40016ac73314bff: crates/bench/src/bin/fig19_accuracy.rs

crates/bench/src/bin/fig19_accuracy.rs:
