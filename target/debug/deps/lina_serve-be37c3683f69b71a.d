/root/repo/target/debug/deps/lina_serve-be37c3683f69b71a.d: crates/serve/src/lib.rs crates/serve/src/arrival.rs crates/serve/src/batcher.rs crates/serve/src/engine.rs crates/serve/src/request.rs crates/serve/src/slo.rs Cargo.toml

/root/repo/target/debug/deps/liblina_serve-be37c3683f69b71a.rmeta: crates/serve/src/lib.rs crates/serve/src/arrival.rs crates/serve/src/batcher.rs crates/serve/src/engine.rs crates/serve/src/request.rs crates/serve/src/slo.rs Cargo.toml

crates/serve/src/lib.rs:
crates/serve/src/arrival.rs:
crates/serve/src/batcher.rs:
crates/serve/src/engine.rs:
crates/serve/src/request.rs:
crates/serve/src/slo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
