/root/repo/target/debug/deps/serve_load_sweep-c3253a7aba7ecc11.d: crates/bench/src/bin/serve_load_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libserve_load_sweep-c3253a7aba7ecc11.rmeta: crates/bench/src/bin/serve_load_sweep.rs Cargo.toml

crates/bench/src/bin/serve_load_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
