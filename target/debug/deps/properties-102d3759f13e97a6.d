/root/repo/target/debug/deps/properties-102d3759f13e97a6.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-102d3759f13e97a6: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
