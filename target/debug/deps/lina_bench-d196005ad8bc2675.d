/root/repo/target/debug/deps/lina_bench-d196005ad8bc2675.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblina_bench-d196005ad8bc2675.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
