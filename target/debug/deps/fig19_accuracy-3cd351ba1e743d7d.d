/root/repo/target/debug/deps/fig19_accuracy-3cd351ba1e743d7d.d: crates/bench/src/bin/fig19_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libfig19_accuracy-3cd351ba1e743d7d.rmeta: crates/bench/src/bin/fig19_accuracy.rs Cargo.toml

crates/bench/src/bin/fig19_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
