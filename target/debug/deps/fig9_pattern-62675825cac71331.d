/root/repo/target/debug/deps/fig9_pattern-62675825cac71331.d: crates/bench/src/bin/fig9_pattern.rs

/root/repo/target/debug/deps/fig9_pattern-62675825cac71331: crates/bench/src/bin/fig9_pattern.rs

crates/bench/src/bin/fig9_pattern.rs:
