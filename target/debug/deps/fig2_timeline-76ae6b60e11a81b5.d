/root/repo/target/debug/deps/fig2_timeline-76ae6b60e11a81b5.d: crates/bench/src/bin/fig2_timeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_timeline-76ae6b60e11a81b5.rmeta: crates/bench/src/bin/fig2_timeline.rs Cargo.toml

crates/bench/src/bin/fig2_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
