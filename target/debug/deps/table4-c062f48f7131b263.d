/root/repo/target/debug/deps/table4-c062f48f7131b263.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-c062f48f7131b263: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
