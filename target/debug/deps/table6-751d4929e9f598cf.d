/root/repo/target/debug/deps/table6-751d4929e9f598cf.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-751d4929e9f598cf: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
