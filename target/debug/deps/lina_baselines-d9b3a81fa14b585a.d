/root/repo/target/debug/deps/lina_baselines-d9b3a81fa14b585a.d: crates/baselines/src/lib.rs crates/baselines/src/policies.rs crates/baselines/src/schemes.rs

/root/repo/target/debug/deps/liblina_baselines-d9b3a81fa14b585a.rlib: crates/baselines/src/lib.rs crates/baselines/src/policies.rs crates/baselines/src/schemes.rs

/root/repo/target/debug/deps/liblina_baselines-d9b3a81fa14b585a.rmeta: crates/baselines/src/lib.rs crates/baselines/src/policies.rs crates/baselines/src/schemes.rs

crates/baselines/src/lib.rs:
crates/baselines/src/policies.rs:
crates/baselines/src/schemes.rs:
