/root/repo/target/debug/deps/lina_runner-5de056d02259b554.d: crates/runner/src/lib.rs crates/runner/src/engine.rs crates/runner/src/inference.rs crates/runner/src/session.rs crates/runner/src/sweep.rs crates/runner/src/train.rs

/root/repo/target/debug/deps/liblina_runner-5de056d02259b554.rlib: crates/runner/src/lib.rs crates/runner/src/engine.rs crates/runner/src/inference.rs crates/runner/src/session.rs crates/runner/src/sweep.rs crates/runner/src/train.rs

/root/repo/target/debug/deps/liblina_runner-5de056d02259b554.rmeta: crates/runner/src/lib.rs crates/runner/src/engine.rs crates/runner/src/inference.rs crates/runner/src/session.rs crates/runner/src/sweep.rs crates/runner/src/train.rs

crates/runner/src/lib.rs:
crates/runner/src/engine.rs:
crates/runner/src/inference.rs:
crates/runner/src/session.rs:
crates/runner/src/sweep.rs:
crates/runner/src/train.rs:
