/root/repo/target/debug/deps/fig19_accuracy-2ddf0bf7359d90de.d: crates/bench/src/bin/fig19_accuracy.rs

/root/repo/target/debug/deps/fig19_accuracy-2ddf0bf7359d90de: crates/bench/src/bin/fig19_accuracy.rs

crates/bench/src/bin/fig19_accuracy.rs:
