/root/repo/target/debug/deps/fig5_backward_timeline-cf9fcc929af6556f.d: crates/bench/src/bin/fig5_backward_timeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_backward_timeline-cf9fcc929af6556f.rmeta: crates/bench/src/bin/fig5_backward_timeline.rs Cargo.toml

crates/bench/src/bin/fig5_backward_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
