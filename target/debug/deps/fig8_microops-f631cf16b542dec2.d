/root/repo/target/debug/deps/fig8_microops-f631cf16b542dec2.d: crates/bench/src/bin/fig8_microops.rs

/root/repo/target/debug/deps/fig8_microops-f631cf16b542dec2: crates/bench/src/bin/fig8_microops.rs

crates/bench/src/bin/fig8_microops.rs:
