/root/repo/target/debug/deps/end_to_end_serving-7d58dbe805ff0d26.d: tests/end_to_end_serving.rs

/root/repo/target/debug/deps/end_to_end_serving-7d58dbe805ff0d26: tests/end_to_end_serving.rs

tests/end_to_end_serving.rs:
