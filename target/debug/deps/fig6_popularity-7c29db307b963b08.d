/root/repo/target/debug/deps/fig6_popularity-7c29db307b963b08.d: crates/bench/src/bin/fig6_popularity.rs

/root/repo/target/debug/deps/fig6_popularity-7c29db307b963b08: crates/bench/src/bin/fig6_popularity.rs

crates/bench/src/bin/fig6_popularity.rs:
