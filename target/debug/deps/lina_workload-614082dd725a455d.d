/root/repo/target/debug/deps/lina_workload-614082dd725a455d.d: crates/workload/src/lib.rs crates/workload/src/gating.rs crates/workload/src/patterns.rs crates/workload/src/spec.rs crates/workload/src/tokens.rs

/root/repo/target/debug/deps/liblina_workload-614082dd725a455d.rlib: crates/workload/src/lib.rs crates/workload/src/gating.rs crates/workload/src/patterns.rs crates/workload/src/spec.rs crates/workload/src/tokens.rs

/root/repo/target/debug/deps/liblina_workload-614082dd725a455d.rmeta: crates/workload/src/lib.rs crates/workload/src/gating.rs crates/workload/src/patterns.rs crates/workload/src/spec.rs crates/workload/src/tokens.rs

crates/workload/src/lib.rs:
crates/workload/src/gating.rs:
crates/workload/src/patterns.rs:
crates/workload/src/spec.rs:
crates/workload/src/tokens.rs:
