/root/repo/target/debug/deps/fig17_layer_time-9127315f07d32e27.d: crates/bench/src/bin/fig17_layer_time.rs

/root/repo/target/debug/deps/fig17_layer_time-9127315f07d32e27: crates/bench/src/bin/fig17_layer_time.rs

crates/bench/src/bin/fig17_layer_time.rs:
