/root/repo/target/debug/deps/table6-5f7a24326ddad8c7.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-5f7a24326ddad8c7: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
