/root/repo/target/debug/deps/fig8_microops-fd64dcf40ef3d76a.d: crates/bench/src/bin/fig8_microops.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_microops-fd64dcf40ef3d76a.rmeta: crates/bench/src/bin/fig8_microops.rs Cargo.toml

crates/bench/src/bin/fig8_microops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
