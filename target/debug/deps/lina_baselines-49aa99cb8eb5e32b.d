/root/repo/target/debug/deps/lina_baselines-49aa99cb8eb5e32b.d: crates/baselines/src/lib.rs crates/baselines/src/policies.rs crates/baselines/src/schemes.rs Cargo.toml

/root/repo/target/debug/deps/liblina_baselines-49aa99cb8eb5e32b.rmeta: crates/baselines/src/lib.rs crates/baselines/src/policies.rs crates/baselines/src/schemes.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/policies.rs:
crates/baselines/src/schemes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
