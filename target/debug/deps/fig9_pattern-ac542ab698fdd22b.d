/root/repo/target/debug/deps/fig9_pattern-ac542ab698fdd22b.d: crates/bench/src/bin/fig9_pattern.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_pattern-ac542ab698fdd22b.rmeta: crates/bench/src/bin/fig9_pattern.rs Cargo.toml

crates/bench/src/bin/fig9_pattern.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
