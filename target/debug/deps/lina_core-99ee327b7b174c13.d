/root/repo/target/debug/deps/lina_core-99ee327b7b174c13.d: crates/core/src/lib.rs crates/core/src/inference/mod.rs crates/core/src/inference/estimator.rs crates/core/src/inference/placement.rs crates/core/src/inference/twophase.rs crates/core/src/policy.rs crates/core/src/training/mod.rs crates/core/src/training/packing.rs crates/core/src/training/scheduler.rs Cargo.toml

/root/repo/target/debug/deps/liblina_core-99ee327b7b174c13.rmeta: crates/core/src/lib.rs crates/core/src/inference/mod.rs crates/core/src/inference/estimator.rs crates/core/src/inference/placement.rs crates/core/src/inference/twophase.rs crates/core/src/policy.rs crates/core/src/training/mod.rs crates/core/src/training/packing.rs crates/core/src/training/scheduler.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/inference/mod.rs:
crates/core/src/inference/estimator.rs:
crates/core/src/inference/placement.rs:
crates/core/src/inference/twophase.rs:
crates/core/src/policy.rs:
crates/core/src/training/mod.rs:
crates/core/src/training/packing.rs:
crates/core/src/training/scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
