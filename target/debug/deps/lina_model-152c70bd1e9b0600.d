/root/repo/target/debug/deps/lina_model-152c70bd1e9b0600.d: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/graph.rs crates/model/src/passes.rs crates/model/src/routing.rs

/root/repo/target/debug/deps/lina_model-152c70bd1e9b0600: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/graph.rs crates/model/src/passes.rs crates/model/src/routing.rs

crates/model/src/lib.rs:
crates/model/src/config.rs:
crates/model/src/cost.rs:
crates/model/src/graph.rs:
crates/model/src/passes.rs:
crates/model/src/routing.rs:
