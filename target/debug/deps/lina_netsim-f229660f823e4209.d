/root/repo/target/debug/deps/lina_netsim-f229660f823e4209.d: crates/netsim/src/lib.rs crates/netsim/src/collectives.rs crates/netsim/src/fairshare.rs crates/netsim/src/memory.rs crates/netsim/src/network.rs crates/netsim/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/liblina_netsim-f229660f823e4209.rmeta: crates/netsim/src/lib.rs crates/netsim/src/collectives.rs crates/netsim/src/fairshare.rs crates/netsim/src/memory.rs crates/netsim/src/network.rs crates/netsim/src/topology.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/collectives.rs:
crates/netsim/src/fairshare.rs:
crates/netsim/src/memory.rs:
crates/netsim/src/network.rs:
crates/netsim/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
