/root/repo/target/debug/deps/fig5_backward_timeline-148cdf87502b9cfe.d: crates/bench/src/bin/fig5_backward_timeline.rs

/root/repo/target/debug/deps/fig5_backward_timeline-148cdf87502b9cfe: crates/bench/src/bin/fig5_backward_timeline.rs

crates/bench/src/bin/fig5_backward_timeline.rs:
