/root/repo/target/debug/deps/fig4_expert_sweep-770547e8c9b8323c.d: crates/bench/src/bin/fig4_expert_sweep.rs

/root/repo/target/debug/deps/fig4_expert_sweep-770547e8c9b8323c: crates/bench/src/bin/fig4_expert_sweep.rs

crates/bench/src/bin/fig4_expert_sweep.rs:
