/root/repo/target/debug/deps/lina_netsim-fcea71d7b7e96ae4.d: crates/netsim/src/lib.rs crates/netsim/src/collectives.rs crates/netsim/src/fairshare.rs crates/netsim/src/memory.rs crates/netsim/src/network.rs crates/netsim/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/liblina_netsim-fcea71d7b7e96ae4.rmeta: crates/netsim/src/lib.rs crates/netsim/src/collectives.rs crates/netsim/src/fairshare.rs crates/netsim/src/memory.rs crates/netsim/src/network.rs crates/netsim/src/topology.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/collectives.rs:
crates/netsim/src/fairshare.rs:
crates/netsim/src/memory.rs:
crates/netsim/src/network.rs:
crates/netsim/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
