/root/repo/target/debug/deps/fig7_schedules-8382085ff1b323b7.d: crates/bench/src/bin/fig7_schedules.rs

/root/repo/target/debug/deps/fig7_schedules-8382085ff1b323b7: crates/bench/src/bin/fig7_schedules.rs

crates/bench/src/bin/fig7_schedules.rs:
