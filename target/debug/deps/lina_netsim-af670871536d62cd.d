/root/repo/target/debug/deps/lina_netsim-af670871536d62cd.d: crates/netsim/src/lib.rs crates/netsim/src/collectives.rs crates/netsim/src/fairshare.rs crates/netsim/src/memory.rs crates/netsim/src/network.rs crates/netsim/src/topology.rs

/root/repo/target/debug/deps/lina_netsim-af670871536d62cd: crates/netsim/src/lib.rs crates/netsim/src/collectives.rs crates/netsim/src/fairshare.rs crates/netsim/src/memory.rs crates/netsim/src/network.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/collectives.rs:
crates/netsim/src/fairshare.rs:
crates/netsim/src/memory.rs:
crates/netsim/src/network.rs:
crates/netsim/src/topology.rs:
