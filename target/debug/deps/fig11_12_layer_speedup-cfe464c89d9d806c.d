/root/repo/target/debug/deps/fig11_12_layer_speedup-cfe464c89d9d806c.d: crates/bench/src/bin/fig11_12_layer_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_12_layer_speedup-cfe464c89d9d806c.rmeta: crates/bench/src/bin/fig11_12_layer_speedup.rs Cargo.toml

crates/bench/src/bin/fig11_12_layer_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
