/root/repo/target/debug/deps/fig5_backward_timeline-a821f5a508dc89eb.d: crates/bench/src/bin/fig5_backward_timeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_backward_timeline-a821f5a508dc89eb.rmeta: crates/bench/src/bin/fig5_backward_timeline.rs Cargo.toml

crates/bench/src/bin/fig5_backward_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
