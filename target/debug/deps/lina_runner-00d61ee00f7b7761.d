/root/repo/target/debug/deps/lina_runner-00d61ee00f7b7761.d: crates/runner/src/lib.rs crates/runner/src/engine.rs crates/runner/src/inference.rs crates/runner/src/session.rs crates/runner/src/sweep.rs crates/runner/src/train.rs Cargo.toml

/root/repo/target/debug/deps/liblina_runner-00d61ee00f7b7761.rmeta: crates/runner/src/lib.rs crates/runner/src/engine.rs crates/runner/src/inference.rs crates/runner/src/session.rs crates/runner/src/sweep.rs crates/runner/src/train.rs Cargo.toml

crates/runner/src/lib.rs:
crates/runner/src/engine.rs:
crates/runner/src/inference.rs:
crates/runner/src/session.rs:
crates/runner/src/sweep.rs:
crates/runner/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
