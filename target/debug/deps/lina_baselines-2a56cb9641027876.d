/root/repo/target/debug/deps/lina_baselines-2a56cb9641027876.d: crates/baselines/src/lib.rs crates/baselines/src/policies.rs crates/baselines/src/schemes.rs Cargo.toml

/root/repo/target/debug/deps/liblina_baselines-2a56cb9641027876.rmeta: crates/baselines/src/lib.rs crates/baselines/src/policies.rs crates/baselines/src/schemes.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/policies.rs:
crates/baselines/src/schemes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
