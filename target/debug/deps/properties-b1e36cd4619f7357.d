/root/repo/target/debug/deps/properties-b1e36cd4619f7357.d: crates/serve/tests/properties.rs

/root/repo/target/debug/deps/properties-b1e36cd4619f7357: crates/serve/tests/properties.rs

crates/serve/tests/properties.rs:
