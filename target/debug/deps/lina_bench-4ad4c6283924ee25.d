/root/repo/target/debug/deps/lina_bench-4ad4c6283924ee25.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblina_bench-4ad4c6283924ee25.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
