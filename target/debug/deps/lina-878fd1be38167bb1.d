/root/repo/target/debug/deps/lina-878fd1be38167bb1.d: src/lib.rs

/root/repo/target/debug/deps/liblina-878fd1be38167bb1.rlib: src/lib.rs

/root/repo/target/debug/deps/liblina-878fd1be38167bb1.rmeta: src/lib.rs

src/lib.rs:
