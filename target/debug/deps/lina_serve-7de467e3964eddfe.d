/root/repo/target/debug/deps/lina_serve-7de467e3964eddfe.d: crates/serve/src/lib.rs crates/serve/src/arrival.rs crates/serve/src/batcher.rs crates/serve/src/engine.rs crates/serve/src/request.rs crates/serve/src/slo.rs Cargo.toml

/root/repo/target/debug/deps/liblina_serve-7de467e3964eddfe.rmeta: crates/serve/src/lib.rs crates/serve/src/arrival.rs crates/serve/src/batcher.rs crates/serve/src/engine.rs crates/serve/src/request.rs crates/serve/src/slo.rs Cargo.toml

crates/serve/src/lib.rs:
crates/serve/src/arrival.rs:
crates/serve/src/batcher.rs:
crates/serve/src/engine.rs:
crates/serve/src/request.rs:
crates/serve/src/slo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
