/root/repo/target/debug/deps/lina_model-018d903ec2a2f9dc.d: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/graph.rs crates/model/src/passes.rs crates/model/src/routing.rs

/root/repo/target/debug/deps/liblina_model-018d903ec2a2f9dc.rlib: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/graph.rs crates/model/src/passes.rs crates/model/src/routing.rs

/root/repo/target/debug/deps/liblina_model-018d903ec2a2f9dc.rmeta: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/graph.rs crates/model/src/passes.rs crates/model/src/routing.rs

crates/model/src/lib.rs:
crates/model/src/config.rs:
crates/model/src/cost.rs:
crates/model/src/graph.rs:
crates/model/src/passes.rs:
crates/model/src/routing.rs:
