/root/repo/target/debug/deps/fig7_schedules-0def64c8ef10d53c.d: crates/bench/src/bin/fig7_schedules.rs

/root/repo/target/debug/deps/fig7_schedules-0def64c8ef10d53c: crates/bench/src/bin/fig7_schedules.rs

crates/bench/src/bin/fig7_schedules.rs:
