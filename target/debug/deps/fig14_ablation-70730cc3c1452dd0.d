/root/repo/target/debug/deps/fig14_ablation-70730cc3c1452dd0.d: crates/bench/src/bin/fig14_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_ablation-70730cc3c1452dd0.rmeta: crates/bench/src/bin/fig14_ablation.rs Cargo.toml

crates/bench/src/bin/fig14_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
