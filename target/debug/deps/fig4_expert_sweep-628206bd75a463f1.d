/root/repo/target/debug/deps/fig4_expert_sweep-628206bd75a463f1.d: crates/bench/src/bin/fig4_expert_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_expert_sweep-628206bd75a463f1.rmeta: crates/bench/src/bin/fig4_expert_sweep.rs Cargo.toml

crates/bench/src/bin/fig4_expert_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
