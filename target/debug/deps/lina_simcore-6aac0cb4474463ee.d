/root/repo/target/debug/deps/lina_simcore-6aac0cb4474463ee.d: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/table.rs crates/simcore/src/time.rs crates/simcore/src/timeline.rs

/root/repo/target/debug/deps/lina_simcore-6aac0cb4474463ee: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/table.rs crates/simcore/src/time.rs crates/simcore/src/timeline.rs

crates/simcore/src/lib.rs:
crates/simcore/src/events.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/table.rs:
crates/simcore/src/time.rs:
crates/simcore/src/timeline.rs:
