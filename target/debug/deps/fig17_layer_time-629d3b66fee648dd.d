/root/repo/target/debug/deps/fig17_layer_time-629d3b66fee648dd.d: crates/bench/src/bin/fig17_layer_time.rs Cargo.toml

/root/repo/target/debug/deps/libfig17_layer_time-629d3b66fee648dd.rmeta: crates/bench/src/bin/fig17_layer_time.rs Cargo.toml

crates/bench/src/bin/fig17_layer_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
