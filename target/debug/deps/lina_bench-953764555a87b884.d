/root/repo/target/debug/deps/lina_bench-953764555a87b884.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/lina_bench-953764555a87b884: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
