/root/repo/target/debug/deps/fig13_a2a_speedup-4173db5158107a7b.d: crates/bench/src/bin/fig13_a2a_speedup.rs

/root/repo/target/debug/deps/fig13_a2a_speedup-4173db5158107a7b: crates/bench/src/bin/fig13_a2a_speedup.rs

crates/bench/src/bin/fig13_a2a_speedup.rs:
