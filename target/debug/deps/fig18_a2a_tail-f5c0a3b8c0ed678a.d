/root/repo/target/debug/deps/fig18_a2a_tail-f5c0a3b8c0ed678a.d: crates/bench/src/bin/fig18_a2a_tail.rs

/root/repo/target/debug/deps/fig18_a2a_tail-f5c0a3b8c0ed678a: crates/bench/src/bin/fig18_a2a_tail.rs

crates/bench/src/bin/fig18_a2a_tail.rs:
