/root/repo/target/debug/deps/end_to_end_serving-66a8ec1c642f3fbc.d: tests/end_to_end_serving.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_serving-66a8ec1c642f3fbc.rmeta: tests/end_to_end_serving.rs Cargo.toml

tests/end_to_end_serving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
