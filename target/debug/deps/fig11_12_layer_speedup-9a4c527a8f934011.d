/root/repo/target/debug/deps/fig11_12_layer_speedup-9a4c527a8f934011.d: crates/bench/src/bin/fig11_12_layer_speedup.rs

/root/repo/target/debug/deps/fig11_12_layer_speedup-9a4c527a8f934011: crates/bench/src/bin/fig11_12_layer_speedup.rs

crates/bench/src/bin/fig11_12_layer_speedup.rs:
