/root/repo/target/debug/deps/lina_netsim-166f4323ef8825c4.d: crates/netsim/src/lib.rs crates/netsim/src/collectives.rs crates/netsim/src/fairshare.rs crates/netsim/src/memory.rs crates/netsim/src/network.rs crates/netsim/src/topology.rs

/root/repo/target/debug/deps/liblina_netsim-166f4323ef8825c4.rlib: crates/netsim/src/lib.rs crates/netsim/src/collectives.rs crates/netsim/src/fairshare.rs crates/netsim/src/memory.rs crates/netsim/src/network.rs crates/netsim/src/topology.rs

/root/repo/target/debug/deps/liblina_netsim-166f4323ef8825c4.rmeta: crates/netsim/src/lib.rs crates/netsim/src/collectives.rs crates/netsim/src/fairshare.rs crates/netsim/src/memory.rs crates/netsim/src/network.rs crates/netsim/src/topology.rs

crates/netsim/src/lib.rs:
crates/netsim/src/collectives.rs:
crates/netsim/src/fairshare.rs:
crates/netsim/src/memory.rs:
crates/netsim/src/network.rs:
crates/netsim/src/topology.rs:
