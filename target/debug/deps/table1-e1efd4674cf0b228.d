/root/repo/target/debug/deps/table1-e1efd4674cf0b228.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-e1efd4674cf0b228: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
