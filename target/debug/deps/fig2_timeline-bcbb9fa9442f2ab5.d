/root/repo/target/debug/deps/fig2_timeline-bcbb9fa9442f2ab5.d: crates/bench/src/bin/fig2_timeline.rs

/root/repo/target/debug/deps/fig2_timeline-bcbb9fa9442f2ab5: crates/bench/src/bin/fig2_timeline.rs

crates/bench/src/bin/fig2_timeline.rs:
