/root/repo/target/debug/deps/fig5_backward_timeline-e174e127ad78fce7.d: crates/bench/src/bin/fig5_backward_timeline.rs

/root/repo/target/debug/deps/fig5_backward_timeline-e174e127ad78fce7: crates/bench/src/bin/fig5_backward_timeline.rs

crates/bench/src/bin/fig5_backward_timeline.rs:
