/root/repo/target/debug/deps/lina_baselines-c31a39533ab96ec3.d: crates/baselines/src/lib.rs crates/baselines/src/policies.rs crates/baselines/src/schemes.rs

/root/repo/target/debug/deps/lina_baselines-c31a39533ab96ec3: crates/baselines/src/lib.rs crates/baselines/src/policies.rs crates/baselines/src/schemes.rs

crates/baselines/src/lib.rs:
crates/baselines/src/policies.rs:
crates/baselines/src/schemes.rs:
