/root/repo/target/debug/deps/fig10_step_speedup-addae72903a9345a.d: crates/bench/src/bin/fig10_step_speedup.rs

/root/repo/target/debug/deps/fig10_step_speedup-addae72903a9345a: crates/bench/src/bin/fig10_step_speedup.rs

crates/bench/src/bin/fig10_step_speedup.rs:
