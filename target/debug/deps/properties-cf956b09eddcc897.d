/root/repo/target/debug/deps/properties-cf956b09eddcc897.d: crates/serve/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-cf956b09eddcc897.rmeta: crates/serve/tests/properties.rs Cargo.toml

crates/serve/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
