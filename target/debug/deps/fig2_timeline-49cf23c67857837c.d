/root/repo/target/debug/deps/fig2_timeline-49cf23c67857837c.d: crates/bench/src/bin/fig2_timeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_timeline-49cf23c67857837c.rmeta: crates/bench/src/bin/fig2_timeline.rs Cargo.toml

crates/bench/src/bin/fig2_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
