/root/repo/target/debug/deps/properties-3d03b3c9c6b12047.d: crates/simcore/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-3d03b3c9c6b12047.rmeta: crates/simcore/tests/properties.rs Cargo.toml

crates/simcore/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
