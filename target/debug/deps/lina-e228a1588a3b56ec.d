/root/repo/target/debug/deps/lina-e228a1588a3b56ec.d: src/lib.rs

/root/repo/target/debug/deps/lina-e228a1588a3b56ec: src/lib.rs

src/lib.rs:
