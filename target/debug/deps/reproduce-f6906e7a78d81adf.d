/root/repo/target/debug/deps/reproduce-f6906e7a78d81adf.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-f6906e7a78d81adf: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
