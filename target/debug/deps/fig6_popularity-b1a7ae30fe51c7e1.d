/root/repo/target/debug/deps/fig6_popularity-b1a7ae30fe51c7e1.d: crates/bench/src/bin/fig6_popularity.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_popularity-b1a7ae30fe51c7e1.rmeta: crates/bench/src/bin/fig6_popularity.rs Cargo.toml

crates/bench/src/bin/fig6_popularity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
