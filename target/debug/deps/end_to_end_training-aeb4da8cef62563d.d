/root/repo/target/debug/deps/end_to_end_training-aeb4da8cef62563d.d: tests/end_to_end_training.rs

/root/repo/target/debug/deps/end_to_end_training-aeb4da8cef62563d: tests/end_to_end_training.rs

tests/end_to_end_training.rs:
