/root/repo/target/debug/deps/fig11_12_layer_speedup-1d670ffb4b3766ab.d: crates/bench/src/bin/fig11_12_layer_speedup.rs

/root/repo/target/debug/deps/fig11_12_layer_speedup-1d670ffb4b3766ab: crates/bench/src/bin/fig11_12_layer_speedup.rs

crates/bench/src/bin/fig11_12_layer_speedup.rs:
