/root/repo/target/debug/deps/fig13_a2a_speedup-39b63fd1c2c1a878.d: crates/bench/src/bin/fig13_a2a_speedup.rs

/root/repo/target/debug/deps/fig13_a2a_speedup-39b63fd1c2c1a878: crates/bench/src/bin/fig13_a2a_speedup.rs

crates/bench/src/bin/fig13_a2a_speedup.rs:
