/root/repo/target/debug/deps/conservation-2d9740370b699c5d.d: tests/conservation.rs Cargo.toml

/root/repo/target/debug/deps/libconservation-2d9740370b699c5d.rmeta: tests/conservation.rs Cargo.toml

tests/conservation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
