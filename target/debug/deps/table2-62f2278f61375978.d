/root/repo/target/debug/deps/table2-62f2278f61375978.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-62f2278f61375978: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
