/root/repo/target/debug/deps/fig14_ablation-19eff4422f4501d8.d: crates/bench/src/bin/fig14_ablation.rs

/root/repo/target/debug/deps/fig14_ablation-19eff4422f4501d8: crates/bench/src/bin/fig14_ablation.rs

crates/bench/src/bin/fig14_ablation.rs:
