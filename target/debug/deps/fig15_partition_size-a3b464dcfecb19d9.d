/root/repo/target/debug/deps/fig15_partition_size-a3b464dcfecb19d9.d: crates/bench/src/bin/fig15_partition_size.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_partition_size-a3b464dcfecb19d9.rmeta: crates/bench/src/bin/fig15_partition_size.rs Cargo.toml

crates/bench/src/bin/fig15_partition_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
