/root/repo/target/debug/deps/fig10_step_speedup-7f55d27be38fb93f.d: crates/bench/src/bin/fig10_step_speedup.rs

/root/repo/target/debug/deps/fig10_step_speedup-7f55d27be38fb93f: crates/bench/src/bin/fig10_step_speedup.rs

crates/bench/src/bin/fig10_step_speedup.rs:
