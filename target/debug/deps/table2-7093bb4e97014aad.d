/root/repo/target/debug/deps/table2-7093bb4e97014aad.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-7093bb4e97014aad: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
