/root/repo/target/debug/deps/lina-2573b387d5b71f70.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblina-2573b387d5b71f70.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
