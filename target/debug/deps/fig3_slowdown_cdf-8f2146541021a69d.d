/root/repo/target/debug/deps/fig3_slowdown_cdf-8f2146541021a69d.d: crates/bench/src/bin/fig3_slowdown_cdf.rs

/root/repo/target/debug/deps/fig3_slowdown_cdf-8f2146541021a69d: crates/bench/src/bin/fig3_slowdown_cdf.rs

crates/bench/src/bin/fig3_slowdown_cdf.rs:
