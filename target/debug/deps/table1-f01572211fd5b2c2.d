/root/repo/target/debug/deps/table1-f01572211fd5b2c2.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-f01572211fd5b2c2: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
