/root/repo/target/debug/deps/fig18_a2a_tail-6b134813b64a35b1.d: crates/bench/src/bin/fig18_a2a_tail.rs Cargo.toml

/root/repo/target/debug/deps/libfig18_a2a_tail-6b134813b64a35b1.rmeta: crates/bench/src/bin/fig18_a2a_tail.rs Cargo.toml

crates/bench/src/bin/fig18_a2a_tail.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
