/root/repo/target/debug/deps/lina_simcore-6508f93770c51e05.d: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/table.rs crates/simcore/src/time.rs crates/simcore/src/timeline.rs Cargo.toml

/root/repo/target/debug/deps/liblina_simcore-6508f93770c51e05.rmeta: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/table.rs crates/simcore/src/time.rs crates/simcore/src/timeline.rs Cargo.toml

crates/simcore/src/lib.rs:
crates/simcore/src/events.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/table.rs:
crates/simcore/src/time.rs:
crates/simcore/src/timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
