/root/repo/target/debug/deps/fig18_a2a_tail-778ddceb32664944.d: crates/bench/src/bin/fig18_a2a_tail.rs

/root/repo/target/debug/deps/fig18_a2a_tail-778ddceb32664944: crates/bench/src/bin/fig18_a2a_tail.rs

crates/bench/src/bin/fig18_a2a_tail.rs:
