/root/repo/target/debug/deps/properties-b6b5a18dfa75291d.d: crates/workload/tests/properties.rs

/root/repo/target/debug/deps/properties-b6b5a18dfa75291d: crates/workload/tests/properties.rs

crates/workload/tests/properties.rs:
