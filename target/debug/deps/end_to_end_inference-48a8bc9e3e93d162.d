/root/repo/target/debug/deps/end_to_end_inference-48a8bc9e3e93d162.d: tests/end_to_end_inference.rs

/root/repo/target/debug/deps/end_to_end_inference-48a8bc9e3e93d162: tests/end_to_end_inference.rs

tests/end_to_end_inference.rs:
