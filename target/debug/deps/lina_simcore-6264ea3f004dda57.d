/root/repo/target/debug/deps/lina_simcore-6264ea3f004dda57.d: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/table.rs crates/simcore/src/time.rs crates/simcore/src/timeline.rs

/root/repo/target/debug/deps/liblina_simcore-6264ea3f004dda57.rlib: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/table.rs crates/simcore/src/time.rs crates/simcore/src/timeline.rs

/root/repo/target/debug/deps/liblina_simcore-6264ea3f004dda57.rmeta: crates/simcore/src/lib.rs crates/simcore/src/events.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/table.rs crates/simcore/src/time.rs crates/simcore/src/timeline.rs

crates/simcore/src/lib.rs:
crates/simcore/src/events.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/table.rs:
crates/simcore/src/time.rs:
crates/simcore/src/timeline.rs:
