/root/repo/target/debug/deps/fig3_slowdown_cdf-e58139786e086ae6.d: crates/bench/src/bin/fig3_slowdown_cdf.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_slowdown_cdf-e58139786e086ae6.rmeta: crates/bench/src/bin/fig3_slowdown_cdf.rs Cargo.toml

crates/bench/src/bin/fig3_slowdown_cdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
