/root/repo/target/debug/deps/lina_model-54d27cfb2515b0c9.d: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/graph.rs crates/model/src/passes.rs crates/model/src/routing.rs Cargo.toml

/root/repo/target/debug/deps/liblina_model-54d27cfb2515b0c9.rmeta: crates/model/src/lib.rs crates/model/src/config.rs crates/model/src/cost.rs crates/model/src/graph.rs crates/model/src/passes.rs crates/model/src/routing.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/config.rs:
crates/model/src/cost.rs:
crates/model/src/graph.rs:
crates/model/src/passes.rs:
crates/model/src/routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
