/root/repo/target/debug/deps/table3-3ee4f2ab8ddc6087.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-3ee4f2ab8ddc6087: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
