/root/repo/target/debug/deps/fig6_popularity-d29ad5a1f439d56a.d: crates/bench/src/bin/fig6_popularity.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_popularity-d29ad5a1f439d56a.rmeta: crates/bench/src/bin/fig6_popularity.rs Cargo.toml

crates/bench/src/bin/fig6_popularity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
