/root/repo/target/debug/deps/fig9_pattern-11360f638648c5d7.d: crates/bench/src/bin/fig9_pattern.rs

/root/repo/target/debug/deps/fig9_pattern-11360f638648c5d7: crates/bench/src/bin/fig9_pattern.rs

crates/bench/src/bin/fig9_pattern.rs:
