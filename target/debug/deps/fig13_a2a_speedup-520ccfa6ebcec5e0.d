/root/repo/target/debug/deps/fig13_a2a_speedup-520ccfa6ebcec5e0.d: crates/bench/src/bin/fig13_a2a_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_a2a_speedup-520ccfa6ebcec5e0.rmeta: crates/bench/src/bin/fig13_a2a_speedup.rs Cargo.toml

crates/bench/src/bin/fig13_a2a_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
