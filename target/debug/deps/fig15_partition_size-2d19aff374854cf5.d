/root/repo/target/debug/deps/fig15_partition_size-2d19aff374854cf5.d: crates/bench/src/bin/fig15_partition_size.rs

/root/repo/target/debug/deps/fig15_partition_size-2d19aff374854cf5: crates/bench/src/bin/fig15_partition_size.rs

crates/bench/src/bin/fig15_partition_size.rs:
