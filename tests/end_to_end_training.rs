//! End-to-end training integration tests spanning all crates: workload
//! generation, op-graph compilation, scheduling policies, and the
//! network simulation must compose into the paper's qualitative
//! results.

use lina::baselines::TrainScheme;
use lina::model::{BatchShape, CostModel, DeviceSpec, MoeModelConfig};
use lina::netsim::{ClusterSpec, Topology};
use lina::runner::train::{run_train_step, run_train_steps};
use lina::simcore::SimDuration;

fn setup(model: MoeModelConfig) -> (CostModel, Topology, BatchShape) {
    let topo = Topology::new(ClusterSpec::with_total_gpus(model.experts));
    let batch = BatchShape {
        seqs_per_device: 16,
        seq_len: model.seq_len,
    };
    (CostModel::new(DeviceSpec::a100(), model), topo, batch)
}

#[test]
fn every_scheme_completes_on_every_roster_model() {
    for experts in [2usize, 4, 8, 16] {
        for model in [
            MoeModelConfig::transformer_xl(4, experts),
            MoeModelConfig::gpt2(experts),
        ] {
            let mut small = model.clone();
            small.layers = small.layers.min(4);
            let (cost, topo, batch) = setup(small);
            for scheme in [
                TrainScheme::Baseline,
                TrainScheme::Tutel,
                TrainScheme::Fixed,
                TrainScheme::PriorityOnly,
                TrainScheme::PriorityPartition,
                TrainScheme::LinaNoPack,
                TrainScheme::Lina {
                    experts_per_device: 2.min(experts),
                },
            ] {
                let run = run_train_step(&cost, &topo, batch, scheme, 1);
                assert!(
                    run.metrics.step_time > SimDuration::ZERO,
                    "{} x {} experts produced a zero-length step",
                    scheme.name(),
                    experts
                );
            }
        }
    }
}

#[test]
fn lina_never_loses_to_baseline_across_roster() {
    for experts in [4usize, 16] {
        for model in [
            MoeModelConfig::transformer_xl(8, experts),
            MoeModelConfig::gpt2(experts),
        ] {
            let (cost, topo, batch) = setup(model.clone());
            let packing = if model.name == "Transformer-XL" && experts == 16 {
                4
            } else {
                2
            };
            let base = run_train_steps(&cost, &topo, batch, TrainScheme::Baseline, 3, 9);
            let lina = run_train_steps(
                &cost,
                &topo,
                batch,
                TrainScheme::Lina {
                    experts_per_device: packing,
                },
                3,
                9,
            );
            let mean = |ms: &[lina::runner::train::StepMetrics]| {
                ms.iter().map(|m| m.step_time.as_secs_f64()).sum::<f64>() / ms.len() as f64
            };
            assert!(
                mean(&lina) < mean(&base) * 1.02,
                "{} @ {experts} experts: lina {} vs baseline {}",
                model.name,
                mean(&lina),
                mean(&base)
            );
        }
    }
}

#[test]
fn priority_scheduling_never_slows_the_backward_a2a() {
    let (cost, topo, batch) = setup(MoeModelConfig::gpt2(16));
    let base = run_train_step(&cost, &topo, batch, TrainScheme::Baseline, 77).metrics;
    let lina = run_train_step(&cost, &topo, batch, TrainScheme::PriorityPartition, 77).metrics;
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(
        mean(&lina.a2a_bwd_slowdowns) <= mean(&base.a2a_bwd_slowdowns) + 1e-9,
        "priority+partitioning increased contention: {} vs {}",
        mean(&lina.a2a_bwd_slowdowns),
        mean(&base.a2a_bwd_slowdowns)
    );
    assert!(
        mean(&lina.a2a_bwd_slowdowns) < 1.05,
        "lina's backward all-to-all should be nearly contention-free"
    );
}

#[test]
fn two_expert_packing_eliminates_all_to_all() {
    let (cost, topo, batch) = setup(MoeModelConfig::transformer_xl(4, 2));
    let run = run_train_step(
        &cost,
        &topo,
        batch,
        TrainScheme::Lina {
            experts_per_device: 2,
        },
        1,
    );
    assert_eq!(
        run.metrics.a2a_total,
        SimDuration::ZERO,
        "2 experts x 2 per device must be pure data parallelism"
    );
}

#[test]
fn training_is_deterministic_end_to_end() {
    let (cost, topo, batch) = setup(MoeModelConfig::bert2gpt2(4));
    let a = run_train_step(&cost, &topo, batch, TrainScheme::LinaNoPack, 5).metrics;
    let b = run_train_step(&cost, &topo, batch, TrainScheme::LinaNoPack, 5).metrics;
    assert_eq!(a.step_time, b.step_time);
    assert_eq!(a.a2a_bwd_times, b.a2a_bwd_times);
}

#[test]
fn different_seeds_jitter_the_step() {
    let (cost, topo, batch) = setup(MoeModelConfig::gpt2(4));
    let a = run_train_step(&cost, &topo, batch, TrainScheme::Baseline, 1).metrics;
    let b = run_train_step(&cost, &topo, batch, TrainScheme::Baseline, 2).metrics;
    assert_ne!(a.step_time, b.step_time, "jitter should vary across seeds");
    let ratio = a.step_time.as_secs_f64() / b.step_time.as_secs_f64();
    assert!((0.9..1.1).contains(&ratio), "jitter too strong: {ratio}");
}
