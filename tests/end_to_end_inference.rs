//! End-to-end inference integration tests: estimator profiling,
//! two-phase scheduling, and the inference driver must compose into
//! the Figure 16 ordering.

use lina::baselines::InferScheme;
use lina::core::{PopularityEstimator, TwoPhaseConfig, TwoPhaseScheduler};
use lina::model::{CostModel, DeviceSpec, MoeModelConfig};
use lina::netsim::{ClusterSpec, Topology};
use lina::runner::inference::{run_inference_batch, run_inference_batches, InferenceConfig};
use lina::workload::{Mode, TokenBatch, TokenSource, WorkloadSpec};

struct World {
    cost: CostModel,
    topo: Topology,
    scheduler: TwoPhaseScheduler,
    batches: Vec<TokenBatch>,
}

fn world(experts: usize) -> World {
    let model = MoeModelConfig::transformer_xl(12, experts).for_inference();
    let topo = Topology::new(ClusterSpec::with_total_gpus(experts));
    let cost = CostModel::new(DeviceSpec::a100_inference(), model);
    let spec = WorkloadSpec::enwik8(experts, 12);
    let mut profile_src = TokenSource::new(&spec, 1, 31);
    let profile: Vec<TokenBatch> = (0..8)
        .map(|_| profile_src.sample_batch(experts, 1024, Mode::Train))
        .collect();
    let estimator = PopularityEstimator::profile(&profile, 3);
    let scheduler = TwoPhaseScheduler::new(TwoPhaseConfig::paper_defaults(experts), estimator);
    let mut infer_src = TokenSource::new(&spec, 1, 41);
    let batches = (0..5)
        .map(|_| infer_src.sample_batch(experts, 8192, Mode::Inference))
        .collect();
    World {
        cost,
        topo,
        scheduler,
        batches,
    }
}

fn run(w: &World, scheme: InferScheme) -> lina::runner::inference::InferenceSummary {
    run_inference_batches(
        &w.cost,
        &w.topo,
        &InferenceConfig { scheme, top_k: 1 },
        Some(&w.scheduler),
        &w.batches,
    )
}

#[test]
fn figure16_ordering_holds_at_16_experts() {
    let w = world(16);
    let mut ideal = run(&w, InferScheme::Ideal);
    let mut baseline = run(&w, InferScheme::Baseline);
    let mut lina = run(&w, InferScheme::Lina);
    let mut noest = run(&w, InferScheme::LinaNoEstimation);
    let (i, b, l, ne) = (
        ideal.totals.median(),
        baseline.totals.median(),
        lina.totals.median(),
        noest.totals.median(),
    );
    assert!(i < l, "ideal {i} must beat lina {l}");
    assert!(l < b, "lina {l} must beat baseline {b}");
    assert!(l < ne, "lina {l} must beat reactive scheduling {ne}");
}

#[test]
fn lina_tail_gains_exceed_median_gains() {
    let w = world(16);
    let mut baseline = run(&w, InferScheme::Baseline);
    let mut lina = run(&w, InferScheme::Lina);
    let median_gain = baseline.totals.median() / lina.totals.median();
    let tail_gain = baseline.totals.p95() / lina.totals.p95();
    assert!(
        tail_gain >= median_gain * 0.95,
        "tail gain {tail_gain} collapsed vs median gain {median_gain}"
    );
}

#[test]
fn estimation_accuracy_is_substantial() {
    let w = world(16);
    let s = run(&w, InferScheme::Lina);
    let accuracy = s.accuracy().expect("lina estimates");
    let ft_rate = s.finetune_rate().expect("lina estimates");
    assert!(
        accuracy > 0.4,
        "estimation accuracy {accuracy} too low to be useful"
    );
    assert!(ft_rate < 0.6, "fine-tuning {ft_rate} too frequent");
    // A scheme that never estimates must be distinguishable from one
    // that estimated and always resumed.
    let base = run(&w, InferScheme::Baseline);
    assert_eq!(base.estimates, 0);
    assert_eq!(base.accuracy(), None);
}

#[test]
fn per_layer_shapes_are_consistent() {
    let w = world(16);
    let r = run_inference_batch(
        &w.cost,
        &w.topo,
        &InferenceConfig {
            scheme: InferScheme::Lina,
            top_k: 1,
        },
        Some(&w.scheduler),
        &w.batches[0],
    );
    assert_eq!(r.layer_times.len(), 12);
    assert_eq!(r.a2a_times.len(), 12);
    // Scheduling starts at layer l = 3: 9 estimated layers.
    assert_eq!(r.estimates, 9);
    assert!(r.finetunes <= r.estimates);
    assert!(r.accurate <= r.estimates);
    let sum: f64 = r.layer_times.iter().map(|d| d.as_secs_f64()).sum();
    assert!(
        sum <= r.total.as_secs_f64() + 1e-9,
        "layer times exceed the batch total"
    );
}

#[test]
fn inference_is_deterministic() {
    let w = world(4);
    let a = run(&w, InferScheme::Lina);
    let b = run(&w, InferScheme::Lina);
    let mut at = a.totals;
    let mut bt = b.totals;
    assert_eq!(at.median(), bt.median());
    assert_eq!(at.p95(), bt.p95());
}

#[test]
fn baseline_straggles_ideal_does_not() {
    let w = world(16);
    let base = run_inference_batch(
        &w.cost,
        &w.topo,
        &InferenceConfig {
            scheme: InferScheme::Baseline,
            top_k: 1,
        },
        None,
        &w.batches[0],
    );
    let ideal = run_inference_batch(
        &w.cost,
        &w.topo,
        &InferenceConfig {
            scheme: InferScheme::Ideal,
            top_k: 1,
        },
        None,
        &w.batches[0],
    );
    assert!(
        base.max_idle_frac > 0.3,
        "skew must idle devices: {}",
        base.max_idle_frac
    );
    assert!(
        ideal.max_idle_frac < 0.05,
        "ideal must not idle: {}",
        ideal.max_idle_frac
    );
}
