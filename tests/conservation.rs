//! Cross-crate conservation and invariant checks: tokens are neither
//! created nor destroyed anywhere between the gate and the experts, the
//! network delivers exactly the bytes the collectives describe, and the
//! simulated clock never runs backwards.

use lina::model::{assign_replicas, ExpertPlacement, LayerRouting};
use lina::netsim::{
    AllToAllAlgo, ClusterSpec, CollectiveEngine, CollectiveSpec, DeviceId, Network, Topology,
};
use lina::simcore::Rng;
use lina::workload::{Mode, TokenSource, WorkloadSpec};

#[test]
fn dispatch_conserves_tokens_for_every_placement_shape() {
    let topo = Topology::new(ClusterSpec::paper_testbed());
    let mut rng = Rng::new(404);
    for trial in 0..50 {
        // Random routing.
        let mut routing = LayerRouting::empty(16, 16);
        for d in 0..16 {
            for e in 0..16 {
                routing.counts[d][e] = rng.below(200) as usize;
            }
        }
        // Random replica placement: every expert gets 1-4 hosts.
        let mut hosts = Vec::new();
        for _ in 0..16 {
            let n = 1 + rng.index(4);
            let mut hs: Vec<DeviceId> = Vec::new();
            while hs.len() < n {
                let d = DeviceId(rng.below(16) as u32);
                if !hs.contains(&d) {
                    hs.push(d);
                }
            }
            hosts.push(hs);
        }
        let placement = ExpertPlacement::uniform(hosts);
        let plan = assign_replicas(&routing, &placement, &topo);
        let dispatched: usize = plan.sizes.iter().flatten().sum();
        let computed: usize = (0..16).map(|d| plan.compute_load(d)).sum();
        assert_eq!(dispatched, routing.total(), "trial {trial}: dispatch leak");
        assert_eq!(computed, routing.total(), "trial {trial}: compute leak");
        // Only hosts compute their experts.
        for d in 0..16 {
            for e in 0..16 {
                if plan.compute[d][e] > 0 {
                    assert!(
                        placement.hosts[e].contains(&DeviceId(d as u32)),
                        "trial {trial}: device {d} computed unhosted expert {e}"
                    );
                }
            }
        }
    }
}

#[test]
fn network_delivers_exactly_the_collective_bytes() {
    let topo = Topology::new(ClusterSpec::paper_testbed());
    let specs = [
        CollectiveSpec::uniform_all_to_all(topo.device_ids().collect(), 3e6, AllToAllAlgo::Flat),
        CollectiveSpec::AllReduce {
            participants: topo.device_ids().collect(),
            bytes: 40e6,
        },
        CollectiveSpec::Broadcast {
            root: DeviceId(3),
            participants: topo.device_ids().collect(),
            bytes: 7e6,
        },
    ];
    for spec in specs {
        let mut engine = CollectiveEngine::new(Network::new(topo.clone()));
        engine.start(&spec, 0);
        let done = engine.run_to_idle();
        assert_eq!(done.len(), 1);
        let delivered = engine.network().stats().bytes_delivered;
        let expected = spec.total_bytes();
        assert!(
            (delivered - expected).abs() / expected < 1e-6,
            "delivered {delivered} vs spec {expected}"
        );
    }
}

#[test]
fn hierarchical_all_to_all_also_conserves_end_to_end_payload() {
    // The hierarchical plan forwards through proxies; the *logical*
    // payload (what arrives at final destinations) must still equal the
    // flat payload even though more bytes cross intra-node links.
    let topo = Topology::new(ClusterSpec::paper_testbed());
    let flat =
        CollectiveSpec::uniform_all_to_all(topo.device_ids().collect(), 2e6, AllToAllAlgo::Flat);
    let hier = CollectiveSpec::uniform_all_to_all(
        topo.device_ids().collect(),
        2e6,
        AllToAllAlgo::Hierarchical,
    );
    assert_eq!(flat.total_bytes(), hier.total_bytes());
    for spec in [flat, hier] {
        let mut engine = CollectiveEngine::new(Network::new(topo.clone()));
        engine.start(&spec, 0);
        assert_eq!(engine.run_to_idle().len(), 1);
    }
}

#[test]
fn workload_batches_conserve_tokens_through_routing() {
    let spec = WorkloadSpec::enwik8(16, 12);
    let mut src = TokenSource::new(&spec, 1, 5);
    for mode in [Mode::Train, Mode::Inference] {
        let batch = src.sample_batch(16, 333, Mode::Inference);
        let _ = mode;
        for layer in 0..12 {
            let routing = batch.routing_for_layer(layer);
            assert_eq!(
                routing.total(),
                batch.len(),
                "layer {layer} lost selections"
            );
        }
    }
}

#[test]
fn simulated_clock_is_monotonic_under_stress() {
    let topo = Topology::new(ClusterSpec::paper_testbed());
    let mut engine = CollectiveEngine::new(Network::new(topo.clone()));
    let mut rng = Rng::new(777);
    let mut last = engine.now();
    for tag in 0..30u64 {
        let bytes = 1e5 + rng.f64() * 5e6;
        engine.start(
            &CollectiveSpec::uniform_all_to_all(
                topo.device_ids().collect(),
                bytes,
                if rng.bernoulli(0.5) {
                    AllToAllAlgo::Flat
                } else {
                    AllToAllAlgo::Hierarchical
                },
            ),
            tag,
        );
        if let Some(next) = engine.next_event() {
            let done = engine.advance_to(next);
            for d in &done {
                assert!(d.at >= last, "completion time regressed");
                last = last.max(d.at);
            }
        }
    }
    engine.run_to_idle();
}
