//! End-to-end serving integration tests: the open-loop subsystem must
//! compose arrivals, batching, the inference driver, and SLO tracking
//! into the expected macro behaviour — Lina's re-placement beats the
//! static baseline's tail under skewed traffic at moderate load, and
//! the whole pipeline is deterministic.

use lina::baselines::InferScheme;
use lina::model::{CostModel, DeviceSpec, MoeModelConfig};
use lina::netsim::{ClusterSpec, Topology};
use lina::serve::{serve, ArrivalProcess, BatcherConfig, NetworkMode, ServeConfig, ServeEngine};
use lina::simcore::SimDuration;
use lina::workload::WorkloadSpec;

fn world(experts: usize) -> (CostModel, Topology, WorkloadSpec) {
    let model = MoeModelConfig::transformer_xl(12, experts).for_inference();
    let topo = Topology::new(ClusterSpec::with_total_gpus(experts));
    let cost = CostModel::new(DeviceSpec::a100_inference(), model);
    let spec = WorkloadSpec::enwik8(experts, 12);
    (cost, topo, spec)
}

/// The contended serving regime where placement quality shows: few
/// large requests keep each batch's per-device compute big enough to
/// hide Lina's expert-swap PCIe cost, and a shallow packing cap (2
/// experts per device) bounds the number of swaps per layer.
fn config(scheme: InferScheme, rate: f64) -> ServeConfig {
    ServeConfig {
        scheme,
        top_k: 1,
        path_length: 3,
        max_experts_per_device: 2,
        arrival: ArrivalProcess::Poisson { rate },
        batcher: BatcherConfig {
            max_batch_requests: 4,
            max_wait: SimDuration::from_millis(4),
        },
        slo: SimDuration::from_millis(60),
        n_requests: 64,
        tokens_per_request: 8192,
        token_spread: 0.0,
        drift_period: Some(16),
        reestimate_every: Some(8),
        reestimate_window: 16,
        network: NetworkMode::Solo,
        max_inflight: 1,
        seed: 0xE2E,
        perf: Default::default(),
    }
}

/// At a contended load (70% of the baseline's saturation), Lina's
/// estimation-based re-placement must beat the static baseline on tail
/// latency: shorter batches drain the queue the skew builds up.
#[test]
fn lina_beats_static_baseline_p95_at_moderate_load() {
    let (cost, topo, spec) = world(16);
    let probe = ServeEngine::new(&cost, &topo, &spec, config(InferScheme::Baseline, 1.0));
    let rate = 0.7 * probe.capacity();
    let base = serve(&cost, &topo, &spec, config(InferScheme::Baseline, rate)).report();
    let lina = serve(&cost, &topo, &spec, config(InferScheme::Lina, rate)).report();
    assert!(
        lina.p95 <= base.p95,
        "lina p95 {} must not exceed baseline p95 {}",
        lina.p95,
        base.p95
    );
    assert!(
        lina.attainment >= base.attainment,
        "lina attainment {} fell below baseline {}",
        lina.attainment,
        base.attainment
    );
}

/// Two identical runs produce bit-identical serving outcomes, through
/// every layer of the stack (arrivals, tokens, batching, inference,
/// re-estimation).
#[test]
fn serving_is_deterministic_end_to_end() {
    let (cost, topo, spec) = world(8);
    let mut cfg = config(InferScheme::Lina, 600.0);
    cfg.tokens_per_request = 1024;
    cfg.arrival = ArrivalProcess::Mmpp {
        calm_rate: 400.0,
        burst_rate: 1500.0,
        mean_calm: 0.2,
        mean_burst: 0.05,
    };
    let a = serve(&cost, &topo, &spec, cfg.clone());
    let b = serve(&cost, &topo, &spec, cfg);
    assert_eq!(a.tracker.records(), b.tracker.records());
    assert_eq!(a.tracker.depth_timeline(), b.tracker.depth_timeline());
    assert_eq!(a.batches, b.batches);
    assert_eq!(a.reestimations, b.reestimations);
    assert_eq!(a.report(), b.report());
}

/// The serving loop surfaces the expected load response: pushing the
/// offered rate well past capacity degrades attainment and inflates
/// queueing delay relative to a lightly loaded run.
#[test]
fn saturation_degrades_the_slo() {
    let (cost, topo, spec) = world(8);
    let small = |scheme, rate| {
        let mut cfg = config(scheme, rate);
        cfg.tokens_per_request = 1024;
        cfg
    };
    let probe = ServeEngine::new(&cost, &topo, &spec, small(InferScheme::Baseline, 1.0));
    let capacity = probe.capacity();
    let calm = serve(
        &cost,
        &topo,
        &spec,
        small(InferScheme::Baseline, 0.3 * capacity),
    )
    .report();
    let hot = serve(
        &cost,
        &topo,
        &spec,
        small(InferScheme::Baseline, 3.0 * capacity),
    )
    .report();
    assert!(hot.mean_queue_delay > calm.mean_queue_delay);
    assert!(hot.attainment <= calm.attainment);
    assert!(hot.p99 >= calm.p99);
}
