//! Inference scenario: serve skewed, bursty request batches through a
//! 16-expert Transformer-XL and compare Baseline, Lina, the two
//! ablations, and the balanced Ideal — the paper's Figure 16 setting.
//!
//! ```text
//! cargo run --release --example serve_moe [batches]
//! ```

use lina::baselines::InferScheme;
use lina::core::{PopularityEstimator, TwoPhaseConfig, TwoPhaseScheduler};
use lina::model::{CostModel, DeviceSpec, MoeModelConfig};
use lina::netsim::{ClusterSpec, Topology};
use lina::runner::inference::{run_inference_batches, InferenceConfig};
use lina::simcore::Table;
use lina::workload::{Mode, TokenBatch, TokenSource, WorkloadSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_batches: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(8);

    let experts = 16;
    let model = MoeModelConfig::transformer_xl(12, experts).for_inference();
    let topo = Topology::new(ClusterSpec::with_total_gpus(experts));
    let cost = CostModel::new(DeviceSpec::a100_inference(), model.clone());
    let spec = WorkloadSpec::enwik8(experts, model.layers);

    // Profiling stage: collect expert-selection paths on
    // training-distribution data and build the Ψ tables (path length 3).
    println!("profiling the popularity estimator (l = 3)...");
    let mut profile_src = TokenSource::new(&spec, 1, 1);
    let profile: Vec<TokenBatch> =
        (0..12).map(|_| profile_src.sample_batch(experts, 2048, Mode::Train)).collect();
    let estimator = PopularityEstimator::profile(&profile, 3);
    println!(
        "  {} distinct sample paths at layer 6\n",
        estimator.paths_at(6)
    );
    let scheduler = TwoPhaseScheduler::new(TwoPhaseConfig::paper_defaults(experts), estimator);

    // Serving stage: skewed, bursty request batches.
    let mut infer_src = TokenSource::new(&spec, 1, 2);
    let batches: Vec<TokenBatch> = (0..n_batches)
        .map(|_| infer_src.sample_batch(experts, 16_384, Mode::Inference))
        .collect();

    let mut table = Table::new(
        format!("{n_batches} batches of 16384 tokens/device"),
        &["scheme", "median", "p95", "fine-tune rate", "estimation acc"],
    );
    for scheme in InferScheme::all() {
        let mut s = run_inference_batches(
            &cost,
            &topo,
            &InferenceConfig { scheme, top_k: 1 },
            Some(&scheduler),
            &batches,
        );
        table.row(&[
            scheme.name().into(),
            lina::simcore::format_secs(s.totals.median()),
            lina::simcore::format_secs(s.totals.p95()),
            if s.finetune_rate > 0.0 {
                format!("{:.0}%", s.finetune_rate * 100.0)
            } else {
                "-".into()
            },
            if s.accuracy > 0.0 {
                format!("{:.0}%", s.accuracy * 100.0)
            } else {
                "-".into()
            },
        ]);
    }
    println!("{}", table.render());
    println!(
        "Lina estimates each layer's expert popularity from the tokens'\n\
         observed paths, replicates hot experts and packs cold ones before\n\
         the gate even runs, then fine-tunes only when the gate's output\n\
         deviates too far from the estimate."
    );
}
