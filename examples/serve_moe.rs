//! Serve a MoE model under an open-loop request stream.
//!
//! Demonstrates the `lina-serve` subsystem: bursty MMPP arrivals feed
//! an admission queue, a dynamic batcher forms token batches, and each
//! scheme's latency/SLO profile is reported at ~70% of the baseline's
//! saturation throughput. The popular classes drift over the run and
//! the Lina scheme periodically re-profiles its estimator online.
//!
//! ```text
//! cargo run --release --example serve_moe [requests]
//! ```

use lina::baselines::InferScheme;
use lina::model::{CostModel, DeviceSpec, MoeModelConfig};
use lina::netsim::{ClusterSpec, Topology};
use lina::serve::{serve, ArrivalProcess, BatcherConfig, NetworkMode, ServeConfig, ServeEngine};
use lina::simcore::{SimDuration, Table};
use lina::workload::WorkloadSpec;

fn config(scheme: InferScheme, rate: f64, n_requests: usize) -> ServeConfig {
    ServeConfig {
        scheme,
        top_k: 1,
        path_length: 3,
        max_experts_per_device: 2,
        arrival: ArrivalProcess::Mmpp {
            calm_rate: rate * 0.8,
            burst_rate: rate * 2.0,
            mean_calm: 0.5,
            mean_burst: 0.1,
        },
        batcher: BatcherConfig {
            max_batch_requests: 4,
            max_wait: SimDuration::from_millis(4),
        },
        slo: SimDuration::from_millis(60),
        n_requests,
        tokens_per_request: 8192,
        token_spread: 0.0,
        drift_period: Some((n_requests / 4).max(1)),
        reestimate_every: Some(8),
        reestimate_window: 16,
        network: NetworkMode::Solo,
        max_inflight: 1,
        seed: 0x11A,
        perf: Default::default(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_requests: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(128);

    let experts = 16;
    let model = MoeModelConfig::transformer_xl(12, experts).for_inference();
    let topo = Topology::new(ClusterSpec::with_total_gpus(experts));
    let cost = CostModel::new(DeviceSpec::a100_inference(), model);
    let spec = WorkloadSpec::enwik8(experts, 12);

    // Offered load: 70% of the static baseline's saturation rate.
    let probe = ServeEngine::new(
        &cost,
        &topo,
        &spec,
        config(InferScheme::Baseline, 1.0, n_requests),
    );
    let rate = 0.7 * probe.capacity();

    println!("serving {n_requests} requests at {rate:.0} req/s (70% of baseline capacity)");
    println!(
        "bursty MMPP arrivals, popularity drift every {} requests\n",
        n_requests / 4
    );

    let mut table = Table::new(
        "open-loop serving, Transformer-XL 16 experts",
        &[
            "scheme",
            "p50",
            "p95",
            "p99",
            "SLO att.",
            "goodput",
            "max queue",
            "re-est",
        ],
    );
    for scheme in [
        InferScheme::Baseline,
        InferScheme::Ideal,
        InferScheme::Lina,
        InferScheme::LinaNoEstimation,
    ] {
        let out = serve(&cost, &topo, &spec, config(scheme, rate, n_requests));
        let r = out.report();
        table.row(&[
            scheme.name().into(),
            r.p50.to_string(),
            r.p95.to_string(),
            r.p99.to_string(),
            format!("{:.1}%", r.attainment * 100.0),
            format!("{:.0} req/s", r.goodput),
            r.max_queue_depth.to_string(),
            out.reestimations.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "the estimation-based placement shortens each batch's service time,\n\
         which compounds through the queue: Lina's tail latency and SLO\n\
         attainment match or beat the static baseline at the same offered\n\
         load, and close much of the gap to the oracle placement."
    );
}
