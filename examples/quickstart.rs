//! Quickstart: simulate one MoE training step under the DeepSpeed-like
//! baseline and under Lina, and show where the time went.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lina::baselines::TrainScheme;
use lina::model::{BatchShape, CostModel, DeviceSpec, MoeModelConfig};
use lina::netsim::{ClusterSpec, Topology};
use lina::runner::train::run_train_step;
use lina::simcore::{format_pct, format_speedup};

fn main() {
    // A 16-expert MoE Transformer on the paper's testbed: 16 A100s over
    // four nodes, 100 Gbps per-GPU InfiniBand, NVLink inside a node.
    let experts = 16;
    let model = MoeModelConfig::transformer_xl(12, experts);
    let topo = Topology::new(ClusterSpec::with_total_gpus(experts));
    let cost = CostModel::new(DeviceSpec::a100(), model.clone());
    let batch = BatchShape {
        seqs_per_device: 64,
        seq_len: model.seq_len,
    };

    println!(
        "model: {} ({} layers, {} experts, {:.0}M params)",
        model.name,
        model.layers,
        model.experts,
        model.total_params() as f64 / 1e6
    );
    println!(
        "batch: {} tokens/device over {} GPUs\n",
        batch.tokens_per_device(),
        topo.devices()
    );

    let base = run_train_step(&cost, &topo, batch, TrainScheme::Baseline, 42);
    let lina = run_train_step(
        &cost,
        &topo,
        batch,
        TrainScheme::Lina {
            experts_per_device: 4,
        },
        42,
    );

    for (name, run) in [("baseline (DeepSpeed-like)", &base), ("lina", &lina)] {
        let m = &run.metrics;
        println!("{name}:");
        println!("  step time        {}", m.step_time);
        println!(
            "  all-to-all total {} ({} of the step)",
            m.a2a_total,
            format_pct(m.a2a_total.ratio(m.step_time))
        );
        println!("  GPU utilization  {}", format_pct(m.compute_util));
        println!(
            "  pipelining eff.  {}\n",
            format_pct(m.pipelining_efficiency)
        );
    }
    println!(
        "Lina speedup: {} — priority micro-op scheduling keeps allreduce out\n\
         of all-to-all's way, pipelining hides the rest, and packing 4\n\
         experts per device turns inter-node all-to-all into NVLink traffic.",
        format_speedup(base.metrics.step_time.as_secs_f64() / lina.metrics.step_time.as_secs_f64())
    );
}
