//! Workload exploration: the two statistical properties Lina's
//! inference side is built on — skewed per-layer expert popularity and
//! the cross-layer expert-selection pattern — plus how estimation
//! accuracy responds to the sample-path length.
//!
//! ```text
//! cargo run --release --example explore_patterns
//! ```

use lina::core::PopularityEstimator;
use lina::simcore::{format_pct, Table};
use lina::workload::{
    mean_pattern_ratio, popularity, popularity_skew, top_experts, Mode, TokenBatch, TokenSource,
    WorkloadSpec,
};

fn main() {
    let experts = 16;
    let layers = 12;
    let spec = WorkloadSpec::enwik8(experts, layers);
    let mut src = TokenSource::new(&spec, 1, 7);

    // Property 1: training looks balanced, inference does not.
    let train = src.sample_batch(experts, 4096, Mode::Train);
    let infer = src.sample_batch(experts, 4096, Mode::Inference);
    println!("expert popularity at layer 6:");
    let mut table = Table::new("", &["expert", "training", "inference"]);
    let tp = popularity(&train, 6);
    let ip = popularity(&infer, 6);
    for e in 0..experts {
        table.row(&[
            e.to_string(),
            format!("{:.3}", tp[e]),
            format!("{:.3}", ip[e]),
        ]);
    }
    println!("{}", table.render());
    println!(
        "skew (max/min): training {:.2}x vs inference {:.2}x",
        popularity_skew(&train, 6),
        popularity_skew(&infer, 6)
    );
    println!("inference top-4 experts per layer (they differ layer to layer):");
    for layer in [3, 6, 9] {
        println!("  layer {layer}: {:?}", top_experts(&infer, layer, 4));
    }

    // Property 2: tokens that co-selected an expert keep co-selecting.
    println!("\ncross-layer selection pattern (fraction following the group):");
    for k in 1..=3 {
        println!("  top-{k}: {}", format_pct(mean_pattern_ratio(&infer, k)));
    }

    // Consequence: sample paths predict the next layer's popularity.
    println!("\nestimation accuracy vs sample-path length:");
    for l in [1usize, 3, 6] {
        let mut profile_src = TokenSource::new(&spec, 1, 21);
        let profile: Vec<TokenBatch> = (0..10)
            .map(|_| profile_src.sample_batch(experts, 1024, Mode::Train))
            .collect();
        let est = PopularityEstimator::profile(&profile, l);
        let mut eval = TokenSource::new(&spec, 1, 99);
        let mut hits = 0;
        let mut total = 0;
        for _ in 0..12 {
            let batch = eval.sample_batch(experts, 2048, Mode::Inference);
            for layer in l.max(3)..layers - 1 {
                let estimated = est.estimate_popularity(&batch.tokens, layer, 1);
                let actual = popularity(&batch, layer + 1);
                if PopularityEstimator::estimate_matches(&estimated, &actual, 2) {
                    hits += 1;
                }
                total += 1;
            }
        }
        println!("  l = {l}: {}", format_pct(hits as f64 / total as f64));
    }
    println!(
        "\nLonger paths identify a token's latent behaviour class more\n\
         precisely, which is exactly why the paper's Table 5 finds l = 3\n\
         a sweet spot (l = 6 estimates marginally better but starts\n\
         scheduling three layers later)."
    );
}
