//! Training scenario: compare every scheduling scheme on a GPT-2 MoE
//! model — the workload the paper's Figure 14 ablates — and report
//! step time, all-to-all time, and backward-pass contention.
//!
//! ```text
//! cargo run --release --example train_moe [experts] [steps]
//! ```

use lina::baselines::TrainScheme;
use lina::model::{BatchShape, CostModel, DeviceSpec, MoeModelConfig};
use lina::netsim::{ClusterSpec, Topology};
use lina::runner::train::{run_train_steps, summarize_steps};
use lina::simcore::{format_pct, format_secs, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let experts: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(16);
    let steps: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(5);

    let model = MoeModelConfig::gpt2(experts);
    let topo = Topology::new(ClusterSpec::with_total_gpus(experts));
    let cost = CostModel::new(DeviceSpec::a100(), model.clone());
    let batch = BatchShape {
        seqs_per_device: 64,
        seq_len: model.seq_len,
    };

    println!(
        "GPT-2 MoE: {} experts on {} GPUs, {} tokens/device, {} steps/scheme\n",
        experts,
        topo.devices(),
        batch.tokens_per_device(),
        steps
    );

    let schemes = [
        TrainScheme::Baseline,
        TrainScheme::Tutel,
        TrainScheme::Fixed,
        TrainScheme::PriorityOnly,
        TrainScheme::PriorityPartition,
        TrainScheme::LinaNoPack,
        TrainScheme::Lina {
            experts_per_device: 2.min(experts),
        },
    ];
    let mut table = Table::new(
        "scheduling schemes",
        &[
            "scheme",
            "step time",
            "a2a total",
            "a2a share",
            "bwd slowdown",
            "util",
        ],
    );
    for scheme in schemes {
        let metrics = run_train_steps(&cost, &topo, batch, scheme, steps, 2024);
        let summary = summarize_steps(&metrics);
        let step = summary.step_time.mean();
        let a2a = summary.a2a_total.mean();
        table.row(&[
            scheme.name().into(),
            format_secs(step),
            format_secs(a2a),
            format_pct(a2a / step),
            if summary.slowdowns.is_empty() {
                "-".into()
            } else {
                format!("{:.2}x", summary.slowdowns.mean())
            },
            format_pct(summary.util.mean()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Reading the table: the fair-share baseline lets allreduce prolong\n\
         backward all-to-all; priority+partitioning removes the contention;\n\
         pipelining and packing then shrink the blocking period itself."
    );
}
