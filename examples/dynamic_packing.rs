//! Watch Lina's expert-packing controller converge online: the session
//! starts at one expert per device, measures FFN vs all-to-all
//! micro-ops after warm-up, and doubles the packing until they match
//! (§6.1; adjusted every four steps in the paper).
//!
//! ```text
//! cargo run --release --example dynamic_packing
//! ```

use lina::model::{BatchShape, CostModel, DeviceSpec, MoeModelConfig};
use lina::netsim::{ClusterSpec, Topology};
use lina::runner::session::{run_lina_session, SessionConfig};
use lina::simcore::Table;

fn main() {
    let experts = 16;
    let model = MoeModelConfig::transformer_xl(12, experts);
    let topo = Topology::new(ClusterSpec::with_total_gpus(experts));
    let cost = CostModel::new(DeviceSpec::a100(), model.clone());
    let batch = BatchShape {
        seqs_per_device: 64,
        seq_len: model.seq_len,
    };

    let config = SessionConfig {
        steps: 24,
        warmup_steps: 10,
        adjust_every: 4,
        seed: 9,
    };
    let report = run_lina_session(&cost, &topo, batch, &config);

    let mut table = Table::new(
        "online packing, 16-expert Transformer-XL",
        &[
            "step",
            "experts/device",
            "step time",
            "a2a total",
            "pipelining",
        ],
    );
    for (i, (m, &packing)) in report.steps.iter().zip(&report.packing_trace).enumerate() {
        table.row(&[
            (i + 1).to_string(),
            packing.to_string(),
            m.step_time.to_string(),
            m.a2a_total.to_string(),
            format!("{:.0}%", m.pipelining_efficiency * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "converged at {} experts/device; one-time parameter exchanges cost {}",
        report.final_packing, report.repack_cost
    );
}
